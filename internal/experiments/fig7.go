package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Fig7Result reproduces §4.2: disk usage across differently aged RAID
// groups under an OLTP workload. RG0/RG1 are aged (a random 50% of their
// blocks used), RG2/RG3 are fresh; the write allocator should spread blocks
// evenly within equally aged groups and direct more blocks to the fresh
// groups, with the aged groups seeing a marginally higher tetris rate per
// block written (their tetrises contain partial stripes).
type Fig7Result struct {
	// PerDiskBlocksPerSec[rg][disk] is the data-block write rate per disk,
	// normalized to the nominal client load.
	PerDiskBlocksPerSec [][]float64
	// PerRGBlocksPerSec and PerRGTetrisPerSec aggregate per RAID group.
	PerRGBlocksPerSec []float64
	PerRGTetrisPerSec []float64
	// BlocksPerTetris[rg] shows the fill efficiency: aged groups fit fewer
	// new blocks into each tetris.
	BlocksPerTetris []float64
	// FreshToAgedBlockRatio compares mean fresh-group vs aged-group rates.
	FreshToAgedBlockRatio float64
}

// nominalFig7Load is the cumulative client load the paper reports (68K
// ops/s); rates are normalized to it.
const nominalFig7Load = 68000.0

// RunFig7 regenerates Figure 7.
func RunFig7(cfg Config, w io.Writer) *Fig7Result {
	res := runFig7With(cfg, 0.05, "fig7.min0.05")
	printFig7(w, res)
	return res
}

// runFig7With runs the Figure 7 workload with a configurable
// fragmented-group bias threshold. The threshold ablation reuses it with
// its own sysName: fig7 and the ablations run as concurrent experiments,
// so they must not register the same system name against shared sinks.
func runFig7With(cfg Config, minFraction float64, sysName string) *Fig7Result {
	tun := cfg.tunablesNamed(sysName)
	tun.MinAAScoreFraction = minFraction
	per := cfg.scaled(1<<17, 1<<14)
	g := wafl.GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: per, Media: aa.MediaHDD}
	specs := []wafl.GroupSpec{g, g, g, g}
	aggBlocks := 4 * 6 * per

	lunBlocks := uint64(float64(aggBlocks) * 0.88)
	s := wafl.NewSystem(specs, []wafl.VolSpec{{Name: "vol0", Blocks: lunBlocks * 2}}, tun, cfg.Seed)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", lunBlocks)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	// Construct imbalanced aging: fill and fragment everything, then empty
	// the "new" groups (RG2, RG3) entirely and thin the aged groups
	// (RG0, RG1) down to a random ~50% used.
	workload.Age(s, []*wafl.LUN{lun}, rng, 0.4)
	youngs := []block.Range{
		s.Agg.Groups()[2].Geometry().VBNRange(),
		s.Agg.Groups()[3].Geometry().VBNRange(),
	}
	agedUsed := [2]float64{}
	for i, gr := range s.Agg.Groups()[:2] {
		r := gr.Geometry().VBNRange()
		agedUsed[i] = float64(s.Agg.Bitmap().CountUsed(r)) / float64(r.Len())
	}
	s.PunchHoles(lun, func(lba uint64) bool {
		p := lun.Phys(lba)
		for _, yr := range youngs {
			if yr.Contains(p) {
				return true
			}
		}
		// Thin the aged groups to ~50% used.
		gi := 0
		if s.Agg.Groups()[1].Geometry().VBNRange().Contains(p) {
			gi = 1
		}
		if agedUsed[gi] <= 0.5 {
			return false
		}
		return rng.Float64() < 1-0.5/agedUsed[gi]
	})
	s.CP()
	s.ResetMetrics()

	// Snapshot per-group RAID stats, run the OLTP benchmark, subtract.
	type snap struct {
		blocks, tetrises uint64
		perDisk          []uint64
	}
	pre := make([]snap, 4)
	for i, gr := range s.Agg.Groups() {
		st := gr.RAIDStats()
		pre[i] = snap{st.BlocksWritten, st.Tetrises, append([]uint64(nil), st.PerDeviceBlocks...)}
	}
	ops := int(cfg.scaled(500_000, 40_000))
	workload.DefaultOLTP().Run(s, []*wafl.LUN{lun}, rng, ops)
	s.CP()

	seconds := float64(ops) / nominalFig7Load
	res := &Fig7Result{}
	var agedRate, freshRate float64
	for i, gr := range s.Agg.Groups() {
		st := gr.RAIDStats()
		blocks := st.BlocksWritten - pre[i].blocks
		tets := st.Tetrises - pre[i].tetrises
		var disks []float64
		for d, n := range st.PerDeviceBlocks {
			disks = append(disks, float64(n-pre[i].perDisk[d])/seconds)
		}
		res.PerDiskBlocksPerSec = append(res.PerDiskBlocksPerSec, disks)
		res.PerRGBlocksPerSec = append(res.PerRGBlocksPerSec, float64(blocks)/seconds)
		res.PerRGTetrisPerSec = append(res.PerRGTetrisPerSec, float64(tets)/seconds)
		bpt := 0.0
		if tets > 0 {
			bpt = float64(blocks) / float64(tets)
		}
		res.BlocksPerTetris = append(res.BlocksPerTetris, bpt)
		if i < 2 {
			agedRate += float64(blocks)
		} else {
			freshRate += float64(blocks)
		}
	}
	res.FreshToAgedBlockRatio = stats.Ratio(freshRate, agedRate)
	return res
}

func printFig7(w io.Writer, res *Fig7Result) {
	tb := stats.Table{
		Title:   "Fig 7: per-disk and per-RG write rates (OLTP, RG0/RG1 aged to ~50%, RG2/RG3 fresh)",
		Columns: []string{"group", "aged", "blocks/s", "tetris/s", "blocks/tetris", "per-disk blocks/s"},
	}
	for i := range res.PerRGBlocksPerSec {
		aged := "yes"
		if i >= 2 {
			aged = "no"
		}
		disks := ""
		for d, v := range res.PerDiskBlocksPerSec[i] {
			if d > 0 {
				disks += " "
			}
			disks += fmt.Sprintf("%.0f", v)
		}
		tb.AddRow(fmt.Sprintf("RG%d", i), aged,
			fmt.Sprintf("%.0f", res.PerRGBlocksPerSec[i]),
			fmt.Sprintf("%.1f", res.PerRGTetrisPerSec[i]),
			fmt.Sprintf("%.1f", res.BlocksPerTetris[i]), disks)
	}
	fmt.Fprintln(w, tb.String())
	fmt.Fprintf(w, "fresh/aged block-rate ratio: %.2f (paper: fresh groups receive visibly more blocks)\n\n",
		res.FreshToAgedBlockRatio)
}
