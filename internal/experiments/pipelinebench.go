package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/wafl"
)

// Pipelined-checkpoint overlap benchmark: the same sustained-write workload
// runs twice — once stop-the-world (Pipeline=false) and once pipelined —
// and the modeled sustained-write wall is compared. The classic schedule
// pays alloc + flush serially at every boundary; the pipelined schedule
// allocates generation n+1 while generation n flushes, so each boundary
// costs max(alloc, flush). The gain is Σ(alloc+flush) / Σmax(alloc,flush),
// bounded by 2× and largest when the two sides stay balanced; the artifact
// pins a 1.3× floor at 8 workers. Both arms must converge to an identical
// logical state — pipelining reorders commits, never results.

// PipelineBench is the two-arm comparison.
type PipelineBench struct {
	// Generations counts the pipelined arm's committed generations.
	Generations uint64
	// AllocWall / FlushWall are the per-side modeled totals across all
	// generations; SerialWall is their sum (the stop-the-world schedule)
	// and PipelinedWall the Σmax overlap schedule.
	AllocWall, FlushWall      time.Duration
	PipelinedWall, SerialWall time.Duration
	// OverlapGain is SerialWall / PipelinedWall.
	OverlapGain float64
	// Final-state fingerprints of both arms: aggregate blocks used and
	// cumulative blocks written must match exactly.
	UsedClassic, UsedPipelined       uint64
	WrittenClassic, WrittenPipelined uint64
}

// Identical reports whether both arms converged to the same logical state.
func (b PipelineBench) Identical() bool {
	return b.UsedClassic == b.UsedPipelined && b.WrittenClassic == b.WrittenPipelined
}

// pipelineBenchRounds is the number of write bursts (= pipelined
// generations): enough for the steady overlapped state to dominate the
// un-overlapped first seal and final drain.
const pipelineBenchRounds = 12

// RunPipelineBench ages one system per arm under an identical seeded
// random-write workload with explicitly driven CPs and profiles the
// pipelined arm's generation schedule.
func RunPipelineBench(cfg Config, w io.Writer) PipelineBench {
	run := func(name string, pipeline bool) *wafl.System {
		tun := cfg.tunablesNamed(name)
		tun.Pipeline = pipeline
		tun.DelayedVirtFrees = true
		// The overlap schedule is modeled at a pinned 8-way width (like the
		// micro CP-flush makespan) so the gain is comparable across runs
		// regardless of cfg.Workers.
		tun.Workers = 8
		// CPs are driven explicitly: one generation per round.
		tun.CPEveryOps = 1 << 30
		per := cfg.scaled(1<<16, 1<<14)
		spec := wafl.GroupSpec{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: per,
			Media: aa.MediaHDD, StripesPerAA: 256}
		// Several volumes keep the alloc side's makespan meaningful at 8
		// workers: per-volume alloc work spreads, like the flush fan-out.
		vols := make([]wafl.VolSpec, 4)
		for i := range vols {
			vols[i] = wafl.VolSpec{Name: fmt.Sprintf("v%d", i), Blocks: 8 * aa.RAIDAgnosticBlocks}
		}
		s := wafl.NewSystem([]wafl.GroupSpec{spec, spec}, vols, tun, cfg.Seed)
		lunBlocks := cfg.scaled(40000, 15000)
		luns := make([]*wafl.LUN, len(vols))
		for i, v := range s.Agg.Vols() {
			luns[i] = v.CreateLUN("l", lunBlocks)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		writes := int(cfg.scaled(4000, 1500))
		for round := 0; round < pipelineBenchRounds; round++ {
			for i := 0; i < writes; i++ {
				s.Write(luns[rng.Intn(len(luns))], uint64(rng.Intn(int(lunBlocks))), 1)
			}
			s.CP()
		}
		s.Drain() // no-op on the classic arm
		return s
	}

	classic := run("pipe.stw", false)
	piped := run("pipe.pipelined", true)
	ps := piped.PipelineStats()
	b := PipelineBench{
		Generations:      ps.Generations,
		AllocWall:        ps.AllocWall,
		FlushWall:        ps.FlushWall,
		PipelinedWall:    ps.PipelinedWall,
		SerialWall:       ps.SerialWall,
		OverlapGain:      ps.OverlapGain(),
		UsedClassic:      classic.Agg.Bitmap().Used(),
		UsedPipelined:    piped.Agg.Bitmap().Used(),
		WrittenClassic:   classic.Counters().BlocksWritten,
		WrittenPipelined: piped.Counters().BlocksWritten,
	}

	fmt.Fprintln(w, "### pipeline — pipelined-CP overlap benchmark (modeled, 8 workers)")
	fmt.Fprintf(w, "  generations: %d   alloc wall: %v   flush wall: %v\n",
		b.Generations, b.AllocWall, b.FlushWall)
	fmt.Fprintf(w, "  sustained-write wall: stop-the-world %v, pipelined %v — overlap gain %.2fx\n",
		b.SerialWall, b.PipelinedWall, b.OverlapGain)
	fmt.Fprintf(w, "  final state: classic used %d / written %d, pipelined used %d / written %d\n\n",
		b.UsedClassic, b.WrittenClassic, b.UsedPipelined, b.WrittenPipelined)
	return b
}
