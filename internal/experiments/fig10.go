package experiments

import (
	"fmt"
	"io"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/parallel"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Fig10Result reproduces §4.4: the time to complete the first consistency
// point after mount, with and without the TopAA metafiles, as (A) the
// FlexVol volume size grows and (B) the number of FlexVol volumes grows.
// With TopAA the cost is a fixed small number of metafile block reads per
// file-system instance; without it, every bitmap-metafile page must be
// walked, so the cost grows linearly with total volume size.
type Fig10Result struct {
	// SizeSweep: first-CP time versus per-volume size (fixed count).
	SizeSweep []Fig10Point
	// CountSweep: first-CP time versus volume count (fixed size).
	CountSweep []Fig10Point
}

// Fig10Point is one mount measurement.
type Fig10Point struct {
	Vols      int
	VolBlocks uint64
	// WithTopAA and WithoutTopAA are the modeled first-CP gate times.
	WithTopAA, WithoutTopAA time.Duration
	// The raw work counts behind the model.
	TopAAReads, BitmapPages uint64
}

// Mount-time cost constants: a random 4KiB metafile-block read from HDD
// storage, and the CPU cost of one cache insert.
const (
	mountBlockReadLatency = 1 * time.Millisecond
	mountInsertCPU        = 150 * time.Nanosecond
)

func mountTime(ms wafl.MountStats) time.Duration {
	return time.Duration(ms.TopAABlockReads+ms.BitmapPagesRead)*mountBlockReadLatency +
		time.Duration(ms.CacheInserts)*mountInsertCPU
}

// normDuration guards the table normalizers against a degenerate zero-cost
// mount point (possible at extreme scale-down).
func normDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return 1
	}
	return d
}

func fig10Point(cfg Config, nvols int, volBlocks uint64) Fig10Point {
	// The name carries both sweep dimensions: panel A reuses one volume
	// count at several sizes, and same-named systems would share one trace
	// seq space nondeterministically under parallel arms.
	tun := cfg.tunablesNamed(fmt.Sprintf("fig10.vols%d.blk%d", nvols, volBlocks))
	specs := []wafl.GroupSpec{{
		DataDevices: 6, ParityDevices: 1,
		BlocksPerDevice: cfg.scaled(1<<17, 1<<14), Media: aa.MediaHDD,
	}}
	var vols []wafl.VolSpec
	for i := 0; i < nvols; i++ {
		vols = append(vols, wafl.VolSpec{Name: fmt.Sprintf("vol%d", i), Blocks: volBlocks})
	}
	s := wafl.NewSystem(specs, vols, tun, cfg.Seed)
	// A little activity so the mount is realistic, then a CP to persist the
	// TopAA metafiles.
	lun := s.Agg.Vols()[0].CreateLUN("l", 4096)
	workload.SequentialFill(s, lun, 8)
	s.CP()

	p := Fig10Point{Vols: nvols, VolBlocks: volBlocks}
	msTop := s.Agg.Remount(true)
	p.WithTopAA = mountTime(msTop)
	p.TopAAReads = msTop.TopAABlockReads
	msWalk := s.Agg.Remount(false)
	p.WithoutTopAA = mountTime(msWalk)
	p.BitmapPages = msWalk.BitmapPagesRead
	return p
}

// RunFig10 regenerates Figure 10 (both panels).
func RunFig10(cfg Config, w io.Writer) *Fig10Result {
	res := &Fig10Result{}

	// Every sweep point builds and remounts its own System, so both panels
	// flatten into one work list and fan out over the pool; the ordered
	// result slice splits back into the two panels.
	base := uint64(16) * aa.RAIDAgnosticBlocks
	type job struct {
		vols      int
		volBlocks uint64
	}
	var jobs []job
	// Panel A: 8 volumes, growing per-volume size.
	sizeMults := []uint64{1, 2, 4, 8, 16}
	for _, mult := range sizeMults {
		jobs = append(jobs, job{8, base * mult})
	}
	// Panel B: fixed-size volumes, growing count.
	for _, n := range []int{5, 10, 20, 40} {
		jobs = append(jobs, job{n, base})
	}
	points := parallel.Map(cfg.Workers, len(jobs), func(i int) Fig10Point {
		return fig10Point(cfg, jobs[i].vols, jobs[i].volBlocks)
	})
	res.SizeSweep = points[:len(sizeMults)]
	res.CountSweep = points[len(sizeMults):]

	norm := normDuration(res.SizeSweep[0].WithoutTopAA)
	tbA := stats.Table{
		Title:   "Fig 10 (A): first-CP time vs FlexVol size (8 volumes; normalized to smallest no-TopAA point)",
		Columns: []string{"vol blocks", "with TopAA", "without TopAA", "TopAA reads", "bitmap pages"},
	}
	for _, p := range res.SizeSweep {
		tbA.AddRow(p.VolBlocks,
			fmt.Sprintf("%.3f", float64(p.WithTopAA)/float64(norm)),
			fmt.Sprintf("%.3f", float64(p.WithoutTopAA)/float64(norm)),
			p.TopAAReads, p.BitmapPages)
	}
	fmt.Fprintln(w, tbA.String())

	normB := normDuration(res.CountSweep[0].WithoutTopAA)
	tbB := stats.Table{
		Title:   "Fig 10 (B): first-CP time vs FlexVol count (fixed size; normalized to smallest no-TopAA point)",
		Columns: []string{"volumes", "with TopAA", "without TopAA", "TopAA reads", "bitmap pages"},
	}
	for _, p := range res.CountSweep {
		tbB.AddRow(p.Vols,
			fmt.Sprintf("%.3f", float64(p.WithTopAA)/float64(normB)),
			fmt.Sprintf("%.3f", float64(p.WithoutTopAA)/float64(normB)),
			p.TopAAReads, p.BitmapPages)
	}
	fmt.Fprintln(w, tbB.String())
	fmt.Fprintln(w, "paper: TopAA time flat in both sweeps; no-TopAA time linear in total volume size")
	fmt.Fprintln(w)
	return res
}
