// Package experiments contains one driver per evaluation figure of the
// paper. Each driver builds the configuration §4 describes, ages it with
// the stated workload, measures per-operation service demands by running
// the real allocator/bitmap/RAID/device models, and — where the paper plots
// latency versus achieved throughput — feeds those demands to the MVA model
// in package sim to regenerate the curves.
//
// Absolute numbers are simulation-scale, not the authors' testbed; the
// harness reports the same comparisons the paper makes (who wins, by what
// factor, where curves sit) and EXPERIMENTS.md records paper-vs-measured
// for each headline claim.
package experiments

import (
	"fmt"
	"io"
	"time"

	"waflfs/internal/control"
	"waflfs/internal/obs"
	"waflfs/internal/obs/fragscan"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/obs/picks"
	"waflfs/internal/obs/slo"
	"waflfs/internal/obs/tsdb"
	"waflfs/internal/sim"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
)

// Config controls experiment scale and the client model.
type Config struct {
	// Scale multiplies the default working-set sizes. 1.0 reproduces the
	// figures at full (simulation) scale; tests use much smaller values.
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
	// Cores is the storage server's CPU parallelism (the paper's midrange
	// box has 20 Ivy Bridge cores).
	Cores int
	// Think is the per-client think time in the closed-loop model.
	Think time.Duration
	// Clients is the load sweep (client population per point).
	Clients []int
	// DeviceParallel models internal device concurrency (an enterprise SSD
	// services many commands at once): per-device demand is divided by it
	// before queueing. 1 (or 0) means a single-server device.
	DeviceParallel int
	// Workers bounds the work-pool fan-out: independent experiment arms, MVA
	// sweep points, and (via wafl.Tunables.Workers) CP flushes and mount
	// walks run across this many workers. 0 selects min(GOMAXPROCS, 8),
	// 1 forces serial execution; results are identical for every value.
	Workers int
	// Obs, when non-nil, routes every System the experiments build into the
	// shared observability sinks (metric export, tracing, per-CP CSV).
	Obs *ObsSink
	// Pipeline gates the pipelined-CP families into artifact collection:
	// the overlap benchmark (cp.pipeline.*) and the overlap-window crash
	// matrix (crash.pipeline.*). Off by default so legacy artifacts keep
	// their exact metric set; waflbench -pipeline turns it on.
	Pipeline bool
	// Control gates the closed-loop control families into artifact
	// collection: the controller do-no-harm/does-act audit (control.*) and
	// the adversarial snapshot-storm benchmark (control.storm.*). Off by
	// default so legacy artifacts keep their exact metric set; waflbench
	// -control turns it on.
	Control bool
}

// ObsSink is the shared observability plumbing for an experiment run. Every
// arm registers under its own name prefix (e.g. "fig6.both."), so arms that
// execute concurrently never collide in the export registry, and the sinks
// themselves are safe for concurrent use.
type ObsSink struct {
	// Export receives every arm's metrics, prefixed with the arm name.
	Export *obs.Registry
	// Tracer records CP-phase and allocator events across all arms; events
	// carry the arm name in their Sys field.
	Tracer *obs.Tracer
	// CSV receives one row per metric per consistency point per arm.
	CSV *obs.CSVRecorder
	// Frag receives an allocation-quality scan of every arm's spaces at
	// each CP boundary (report streams are keyed by arm-prefixed space
	// names).
	Frag *fragscan.Recorder
	// FragEvery scans every Nth CP (≤1 = every CP).
	FragEvery int
	// DeviceHistograms enables per-device service-time histograms.
	DeviceHistograms bool
	// TSDB receives one downsampled point per metric per CP per arm.
	TSDB *tsdb.Store
	// Picks receives allocation-decision provenance from every arm's
	// allocators (rings are keyed by arm-prefixed space names).
	Picks *picks.Recorder
	// Watchdogs arms the per-CP invariant monitors on every arm.
	Watchdogs bool
	// Live, when non-nil, receives each arm's registry snapshot at every CP
	// boundary for tear-free serving while arms are running.
	Live *obs.Latest
	// SLO, when non-nil together with TSDB, evaluates the spec portfolio
	// on every arm at each CP boundary; per-arm engines register under the
	// arm name so alert totals can be split by prefix (clean vs crash.*).
	SLO *slo.Set
	// OpTrace receives sampled request-scoped span trees from every arm
	// (rings are keyed by arm-prefixed volume names); per-stage latency
	// attribution surfaces as <arm>.vol.<v>.attr.<stage>_ns metrics.
	OpTrace *optrace.Recorder
	// Control, when non-nil together with TSDB, arms the closed-loop policy
	// portfolio on every arm at each CP boundary; per-arm engines register
	// under the arm name so actuation totals can be split by prefix (clean
	// vs crash.*).
	Control *control.Set
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config {
	return Config{
		Scale:   1.0,
		Seed:    42,
		Cores:   20,
		Think:   5 * time.Millisecond,
		Clients: []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512},
	}
}

// tunablesNamed returns the default tunables with the experiment's
// parallelism knob applied and — when Config.Obs is set — the observability
// sinks wired in under the given arm name. Arms run concurrently, so every
// call site must pass a distinct name: name collisions in a shared export
// registry are resolved by construction order, which parallel arms don't
// have.
func (c Config) tunablesNamed(name string) wafl.Tunables {
	tun := wafl.DefaultTunables()
	tun.Workers = c.Workers
	if c.Obs != nil {
		tun.Obs = &wafl.ObsOptions{
			Name:             name,
			Export:           c.Obs.Export,
			Tracer:           c.Obs.Tracer,
			CSV:              c.Obs.CSV,
			Frag:             c.Obs.Frag,
			FragEvery:        c.Obs.FragEvery,
			DeviceHistograms: c.Obs.DeviceHistograms,
			TSDB:             c.Obs.TSDB,
			Picks:            c.Obs.Picks,
			Watchdogs:        c.Obs.Watchdogs,
			Live:             c.Obs.Live,
			SLO:              c.Obs.SLO,
			OpTrace:          c.Obs.OpTrace,
			Control:          c.Obs.Control,
		}
	}
	return tun
}

// scaled multiplies n by the scale factor with a floor of min.
func (c Config) scaled(n uint64, min uint64) uint64 {
	v := uint64(float64(n) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// measurement is the demand sample of one measurement window.
type measurement struct {
	Counters wafl.Counters
	// DevBusy is each device's busy-time delta, flattened across groups
	// (data devices then the parity stand-in, per group).
	DevBusy []time.Duration
	// DevLabels names the DevBusy entries.
	DevLabels []string
}

func flattenBusy(s *wafl.System) ([]time.Duration, []string) {
	var out []time.Duration
	var labels []string
	for gi, times := range s.DeviceBusyTimes() {
		for di, t := range times {
			out = append(out, t)
			name := fmt.Sprintf("rg%d/d%d", gi, di)
			if di == len(times)-1 {
				name = fmt.Sprintf("rg%d/parity", gi)
			}
			labels = append(labels, name)
		}
	}
	return out, labels
}

// measure runs fn and returns the counter and device-busy deltas.
func measure(s *wafl.System, fn func()) measurement {
	c0 := s.Counters()
	b0, _ := flattenBusy(s)
	fn()
	c1 := s.Counters()
	b1, labels := flattenBusy(s)
	m := measurement{Counters: c1.Sub(c0), DevLabels: labels}
	m.DevBusy = make([]time.Duration, len(b1))
	for i := range b1 {
		m.DevBusy[i] = b1[i] - b0[i]
	}
	return m
}

// centers converts a measurement into MVA service centers: one CPU center
// (demand divided by core count) plus one center per device (demand divided
// by the device's internal parallelism).
func (m measurement) centers(cores, devParallel int) []sim.Center {
	ops := m.Counters.Ops
	if ops == 0 {
		panic("experiments: measurement window saw no operations")
	}
	if devParallel <= 0 {
		devParallel = 1
	}
	cs := []sim.Center{{
		Name:   "cpu",
		Demand: m.Counters.CPUTime / time.Duration(ops) / time.Duration(cores),
	}}
	for i, busy := range m.DevBusy {
		cs = append(cs, sim.Center{
			Name:   m.DevLabels[i],
			Demand: busy / time.Duration(ops) / time.Duration(devParallel),
		})
	}
	return cs
}

// CurvePoint is one load level of a latency-vs-throughput curve.
type CurvePoint struct {
	Clients    int
	Throughput float64 // ops/s
	LatencyMs  float64
}

// Curve is one labeled series of a figure.
type Curve struct {
	Label  string
	Points []CurvePoint
}

// Peak returns the highest-load point.
func (c Curve) Peak() CurvePoint {
	if len(c.Points) == 0 {
		return CurvePoint{}
	}
	return c.Points[len(c.Points)-1]
}

// curveFrom sweeps the client populations over the measured demands.
func curveFrom(label string, m measurement, cfg Config) Curve {
	centers := m.centers(cfg.Cores, cfg.DeviceParallel)
	cv := Curve{Label: label}
	for _, r := range sim.SweepParallel(centers, cfg.Think, cfg.Clients, cfg.Workers) {
		cv.Points = append(cv.Points, CurvePoint{
			Clients:    r.Clients,
			Throughput: r.Throughput,
			LatencyMs:  float64(r.Latency) / float64(time.Millisecond),
		})
	}
	return cv
}

// printCurves renders curves as aligned columns: one row per load level.
func printCurves(w io.Writer, title string, curves []Curve) {
	tb := stats.Table{Title: title, Columns: []string{"clients"}}
	for _, c := range curves {
		tb.Columns = append(tb.Columns, c.Label+" ops/s", c.Label+" lat(ms)")
	}
	if len(curves) == 0 || len(curves[0].Points) == 0 {
		fmt.Fprintln(w, tb.String())
		return
	}
	for i := range curves[0].Points {
		row := []interface{}{curves[0].Points[i].Clients}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.0f", c.Points[i].Throughput),
				fmt.Sprintf("%.3f", c.Points[i].LatencyMs))
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(w, tb.String())
}

// gain reports (a-b)/b in percent.
func gain(a, b float64) float64 { return stats.PercentChange(b, a) }
