package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// quickConfig shrinks the experiments so the directional claims can be
// verified in CI time. The full-scale runs live in the bench harness.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.25
	return cfg
}

func TestFig6Directional(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunFig6(quickConfig(), io.Discard)

	// The cache must pick emptier AAs than random selection, in both
	// number spaces (§4.1).
	if res.AggPickedOn <= res.AggPickedOff {
		t.Errorf("aggregate pick quality: on %.3f <= off %.3f", res.AggPickedOn, res.AggPickedOff)
	}
	if res.VolPickedOn <= res.VolPickedOff {
		t.Errorf("volume pick quality: on %.3f <= off %.3f", res.VolPickedOn, res.VolPickedOff)
	}
	// The aggregate cache must improve peak throughput and reduce latency.
	if res.AggThroughputGainPct <= 0 {
		t.Errorf("aggregate cache throughput gain = %.1f%%", res.AggThroughputGainPct)
	}
	if res.AggLatencyChangePct >= 0 {
		t.Errorf("aggregate cache latency change = %.1f%%", res.AggLatencyChangePct)
	}
	// WA with the cache must not exceed WA without it.
	if res.WAOn > res.WAOff+1e-9 {
		t.Errorf("WA on %.3f > off %.3f", res.WAOn, res.WAOff)
	}
	// The FlexVol cache must reduce CPU per op (§4.1.2).
	if res.CPUPerOpVolOn >= res.CPUPerOpVolOff {
		t.Errorf("CPU/op: vol-cache on %v >= off %v", res.CPUPerOpVolOn, res.CPUPerOpVolOff)
	}
	// Cache maintenance must be a vanishing CPU fraction (paper ~0.002%
	// per cache; anything under 0.1% preserves the claim).
	if res.CacheCPUFraction > 0.001 {
		t.Errorf("cache CPU fraction = %.5f", res.CacheCPUFraction)
	}
	// Curves: latency non-decreasing with load, all throughputs positive.
	for _, c := range res.Curves {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].LatencyMs+1e-9 < c.Points[i-1].LatencyMs {
				t.Errorf("%s: latency decreased with load at point %d", c.Label, i)
			}
		}
	}
}

func TestFig7Directional(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunFig7(quickConfig(), io.Discard)
	if len(res.PerRGBlocksPerSec) != 4 {
		t.Fatalf("groups = %d", len(res.PerRGBlocksPerSec))
	}
	// Fresh groups receive more blocks than aged groups (§4.2).
	if res.FreshToAgedBlockRatio <= 1.1 {
		t.Errorf("fresh/aged ratio = %.2f, want > 1.1", res.FreshToAgedBlockRatio)
	}
	// Within the fresh groups, blocks spread evenly across disks.
	for gi := 2; gi < 4; gi++ {
		disks := res.PerDiskBlocksPerSec[gi]
		min, max := disks[0], disks[0]
		for _, v := range disks {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if min <= 0 || max/min > 1.15 {
			t.Errorf("RG%d per-disk imbalance: min %.0f max %.0f", gi, min, max)
		}
	}
	// Aged groups fit fewer blocks per tetris (partial stripes).
	agedBPT := (res.BlocksPerTetris[0] + res.BlocksPerTetris[1]) / 2
	freshBPT := (res.BlocksPerTetris[2] + res.BlocksPerTetris[3]) / 2
	if agedBPT >= freshBPT {
		t.Errorf("blocks/tetris: aged %.1f >= fresh %.1f", agedBPT, freshBPT)
	}
}

func TestFig8Directional(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunFig8(quickConfig(), io.Discard)
	// Erase-block-sized AAs must beat HDD-sized AAs on an aged SSD system
	// (§4.3): higher peak throughput, lower latency, lower WA.
	if res.ThroughputGainPct <= 0 {
		t.Errorf("throughput gain = %.1f%%", res.ThroughputGainPct)
	}
	if res.LatencyChangePct >= 0 {
		t.Errorf("latency change = %.1f%%", res.LatencyChangePct)
	}
	if res.WALarge > res.WASmall+1e-9 {
		t.Errorf("WA large %.3f > small %.3f", res.WALarge, res.WASmall)
	}
}

func TestFig9Directional(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunFig9(quickConfig(), io.Discard)
	// Zone/AZCS-aligned AAs must beat HDD-sized AAs for sequential writes
	// on SMR (§4.3), and must eliminate the random checksum writes.
	if res.ThroughputGainPct <= 0 {
		t.Errorf("throughput gain = %.1f%%", res.ThroughputGainPct)
	}
	if res.LatencyChangePct >= 0 {
		t.Errorf("latency change = %.1f%%", res.LatencyChangePct)
	}
	if res.RandomChecksumLarge >= res.RandomChecksumSmall {
		t.Errorf("random checksum writes: aligned %d >= unaligned %d",
			res.RandomChecksumLarge, res.RandomChecksumSmall)
	}
}

func TestFig10Directional(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunFig10(quickConfig(), io.Discard)
	// Panel A: TopAA mount time flat in volume size; walk time grows.
	first, last := res.SizeSweep[0], res.SizeSweep[len(res.SizeSweep)-1]
	if last.WithTopAA != first.WithTopAA {
		t.Errorf("TopAA mount time varies with volume size: %v vs %v",
			first.WithTopAA, last.WithTopAA)
	}
	if last.WithoutTopAA < 4*first.WithoutTopAA {
		t.Errorf("walk mount time not linear-ish in size: %v -> %v",
			first.WithoutTopAA, last.WithoutTopAA)
	}
	// TopAA always far cheaper.
	for _, p := range append(res.SizeSweep, res.CountSweep...) {
		if p.WithTopAA*2 > p.WithoutTopAA {
			t.Errorf("TopAA mount %v not clearly cheaper than walk %v (vols=%d size=%d)",
				p.WithTopAA, p.WithoutTopAA, p.Vols, p.VolBlocks)
		}
	}
	// Panel B: walk time grows with volume count.
	firstB, lastB := res.CountSweep[0], res.CountSweep[len(res.CountSweep)-1]
	if lastB.WithoutTopAA <= firstB.WithoutTopAA {
		t.Errorf("walk mount time flat in volume count")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("experiments = %d", len(all))
	}
	for _, e := range all {
		if e.Name == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
	}
	if _, err := Lookup("fig6"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment resolved")
	}
}

func TestPrintCurvesRendersColumns(t *testing.T) {
	var buf bytes.Buffer
	c := Curve{Label: "x", Points: []CurvePoint{{Clients: 1, Throughput: 100, LatencyMs: 2}}}
	printCurves(&buf, "demo", []Curve{c})
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "x ops/s") {
		t.Fatalf("output:\n%s", out)
	}
	// Empty curves don't crash.
	printCurves(io.Discard, "empty", nil)
}

func TestMeasurementPanicsWithoutOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty measurement did not panic")
		}
	}()
	measurement{}.centers(1, 1)
}

func TestAblationsDirectional(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunAblations(quickConfig(), io.Discard)

	// HBPS regret is always within the structural bound and grows with the
	// bin width.
	for _, p := range res.BinWidth {
		if p.MaxRegret > p.GuaranteeBound {
			t.Errorf("bin width %d: regret %d exceeds bound", p.BinWidth, p.MaxRegret)
		}
	}
	first, last := res.BinWidth[0], res.BinWidth[len(res.BinWidth)-1]
	if first.MeanRegret >= last.MeanRegret {
		t.Errorf("mean regret not increasing with bin width: %.1f vs %.1f",
			first.MeanRegret, last.MeanRegret)
	}

	// Smaller AAs give at least as good pick quality, at more cache memory.
	if len(res.AASize) < 2 {
		t.Fatal("AA size sweep empty")
	}
	if res.AASize[0].PickedFreeFraction+0.02 < res.AASize[1].PickedFreeFraction {
		t.Errorf("smaller AA picked worse: %.3f vs %.3f",
			res.AASize[0].PickedFreeFraction, res.AASize[1].PickedFreeFraction)
	}
	if res.AASize[0].HeapBytes <= res.AASize[len(res.AASize)-1].HeapBytes {
		t.Error("smaller AAs should cost more cache memory")
	}

	// The bias exists at every threshold (fresh groups always favored).
	for _, p := range res.Threshold {
		if p.FreshToAgedRatio <= 1.0 {
			t.Errorf("threshold %.2f: fresh/aged ratio %.2f", p.Threshold, p.FreshToAgedRatio)
		}
	}
}
