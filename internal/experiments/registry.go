package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"waflfs/internal/parallel"
)

// Experiment is one runnable reproduction target.
type Experiment struct {
	Name        string
	Description string
	Run         func(cfg Config, w io.Writer)
}

// All returns the experiments in figure order.
func All() []Experiment {
	return []Experiment{
		{
			Name:        "fig6",
			Description: "AA cache performance: latency vs throughput, pick quality, WA, CPU/op (§4.1)",
			Run:         func(cfg Config, w io.Writer) { RunFig6(cfg, w) },
		},
		{
			Name:        "fig7",
			Description: "Imbalanced aging: per-disk/per-RG write rates under OLTP (§4.2)",
			Run:         func(cfg Config, w io.Writer) { RunFig7(cfg, w) },
		},
		{
			Name:        "fig8",
			Description: "SSD AA sizing: erase-block-aligned AAs vs HDD-sized AAs (§4.3)",
			Run:         func(cfg Config, w io.Writer) { RunFig8(cfg, w) },
		},
		{
			Name:        "fig9",
			Description: "SMR AA sizing: zone+AZCS-aligned AAs vs HDD-sized AAs (§4.3)",
			Run:         func(cfg Config, w io.Writer) { RunFig9(cfg, w) },
		},
		{
			Name:        "fig10",
			Description: "TopAA metafile: first-CP time after mount vs volume size/count (§4.4)",
			Run:         func(cfg Config, w io.Writer) { RunFig10(cfg, w) },
		},
		{
			Name:        "crashmatrix",
			Description: "crash recovery: crash at every CP phase × media fault, scrub for silent divergence (§3.4)",
			Run:         func(cfg Config, w io.Writer) { RunCrashMatrix(cfg, w) },
		},
		{
			Name:        "storm",
			Description: "closed-loop control: adversarial aging + snapshot storm, SLO/backlog-driven budget shedding vs static",
			Run:         func(cfg Config, w io.Writer) { RunStorm(cfg, w) },
		},
		{
			Name:        "ablations",
			Description: "design-choice ablations: HBPS bin width, AA size, write-bias threshold",
			Run:         func(cfg Config, w io.Writer) { RunAblations(cfg, w) },
		},
	}
}

// RunAllContext runs every experiment across the work pool (the drivers
// share nothing: each builds its own Systems from cfg.Seed), buffering each
// one's output and writing the buffers to w in registry order, so the
// printed report is identical at any worker count. Cancelling ctx skips
// experiments that have not started; in-flight ones run to completion (the
// pool drains) and their output is still printed. Returns ctx.Err() when
// canceled, in which case the report is incomplete.
func RunAllContext(ctx context.Context, cfg Config, w io.Writer) error {
	all := All()
	outs := make([]*bytes.Buffer, len(all))
	err := parallel.ForEachCtx(ctx, cfg.Workers, len(all), func(i int) {
		e := all[i]
		buf := &bytes.Buffer{}
		start := time.Now()
		fmt.Fprintf(buf, "### %s — %s (scale %.2f)\n\n", e.Name, e.Description, cfg.Scale)
		e.Run(cfg, buf)
		fmt.Fprintf(buf, "[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
		outs[i] = buf
	})
	for _, buf := range outs {
		if buf != nil {
			w.Write(buf.Bytes())
		}
	}
	return err
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, e := range All() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("unknown experiment %q (have %v)", name, names)
}
