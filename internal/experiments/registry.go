package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one runnable reproduction target.
type Experiment struct {
	Name        string
	Description string
	Run         func(cfg Config, w io.Writer)
}

// All returns the experiments in figure order.
func All() []Experiment {
	return []Experiment{
		{
			Name:        "fig6",
			Description: "AA cache performance: latency vs throughput, pick quality, WA, CPU/op (§4.1)",
			Run:         func(cfg Config, w io.Writer) { RunFig6(cfg, w) },
		},
		{
			Name:        "fig7",
			Description: "Imbalanced aging: per-disk/per-RG write rates under OLTP (§4.2)",
			Run:         func(cfg Config, w io.Writer) { RunFig7(cfg, w) },
		},
		{
			Name:        "fig8",
			Description: "SSD AA sizing: erase-block-aligned AAs vs HDD-sized AAs (§4.3)",
			Run:         func(cfg Config, w io.Writer) { RunFig8(cfg, w) },
		},
		{
			Name:        "fig9",
			Description: "SMR AA sizing: zone+AZCS-aligned AAs vs HDD-sized AAs (§4.3)",
			Run:         func(cfg Config, w io.Writer) { RunFig9(cfg, w) },
		},
		{
			Name:        "fig10",
			Description: "TopAA metafile: first-CP time after mount vs volume size/count (§4.4)",
			Run:         func(cfg Config, w io.Writer) { RunFig10(cfg, w) },
		},
		{
			Name:        "ablations",
			Description: "design-choice ablations: HBPS bin width, AA size, write-bias threshold",
			Run:         func(cfg Config, w io.Writer) { RunAblations(cfg, w) },
		},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, e := range All() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("unknown experiment %q (have %v)", name, names)
}
