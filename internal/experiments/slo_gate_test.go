package experiments

import (
	"io"
	"strings"
	"testing"

	"waflfs/internal/faultinject"
	"waflfs/internal/obs"
	"waflfs/internal/obs/slo"
	"waflfs/internal/obs/tsdb"
)

// The end-to-end SLO acceptance gate: clean figure runs fire no alerts,
// while a crash-matrix fault run burns error budget and pages. The same
// invariant is enforced during full artifact collection (hard error in
// CollectArtifact) and in the verify.sh waflbench smokes.
func TestSLOGateCleanFiguresStayGreenCrashPages(t *testing.T) {
	if testing.Short() {
		t.Skip("runs figure arms")
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	cfg.Obs = &ObsSink{
		Export: obs.NewRegistry(),
		TSDB:   tsdb.NewStore(tsdb.Config{Capacity: 128, HistBuckets: tsdb.SuffixFilter(".lat_ns")}),
		SLO:    slo.NewSet(slo.DefaultSpecs()),
	}

	RunFig6(cfg, io.Discard)
	RunFig9(cfg, io.Discard)
	clean := cfg.Obs.SLO.Totals()
	if clean.Evaluations == 0 || clean.Instances == 0 {
		t.Fatalf("SLO engine idle on clean figures: %+v", clean)
	}
	if clean.Pages != 0 || clean.Warns != 0 {
		var sb strings.Builder
		_ = cfg.Obs.SLO.WriteJSON(&sb)
		t.Fatalf("clean fig6/fig9 arms alerted (%d pages, %d warns):\n%s",
			clean.Pages, clean.Warns, sb.String())
	}

	plan, err := faultinject.ParsePlan("phase=flush,fault=torn,cp=2,seed=17")
	if err != nil {
		t.Fatal(err)
	}
	cell := RunFaultScenario(cfg, plan, "crash.flush.torn")
	if !cell.Crashed || cell.Fallbacks == 0 {
		t.Fatalf("fault scenario did not exercise recovery: %+v", cell)
	}

	isCrash := func(sys string) bool { return strings.HasPrefix(sys, "crash.") }
	crash := cfg.Obs.SLO.TotalsWhere(isCrash)
	if crash.Pages == 0 {
		var sb strings.Builder
		_ = cfg.Obs.SLO.WriteJSON(&sb)
		t.Fatalf("crash arm fired no page:\n%s", sb.String())
	}
	// The page must come with real budget consumption on the recovery SLI.
	var burned bool
	for _, st := range cfg.Obs.SLO.Status() {
		if !isCrash(st.System) {
			continue
		}
		for _, in := range st.Instances {
			if in.Kind == string(slo.Recovery) && in.BudgetUsed > 0 {
				burned = true
			}
		}
	}
	if !burned {
		t.Fatal("crash arm paged without burning recovery error budget")
	}
	// And the clean arms must still be green after the crash run.
	cleanAfter := cfg.Obs.SLO.TotalsWhere(func(sys string) bool { return !isCrash(sys) })
	if cleanAfter.Pages != 0 || cleanAfter.Warns != 0 {
		t.Fatalf("clean arms alerted after crash run: %+v", cleanAfter)
	}
}
