package experiments

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"waflfs/internal/benchfmt"
)

func collectTiny(t *testing.T, workers int) benchfmt.Artifact {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	cfg.Workers = workers
	art, err := CollectArtifact(cfg, "BENCH_test", "deadbee", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// The artifact carries provenance and at least one metric from every family
// the schema promises: figure headlines, fragscan summaries, microbench
// results, and modeled clocks.
func TestCollectArtifactShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite")
	}
	art := collectTiny(t, 1)
	if art.Schema != benchfmt.SchemaVersion || art.Name != "BENCH_test" || art.GitRev != "deadbee" {
		t.Fatalf("provenance: %+v", art)
	}
	if art.Scale != 0.05 || art.Workers != 1 {
		t.Fatalf("provenance: scale=%v workers=%d", art.Scale, art.Workers)
	}
	if err := art.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig6.agg_picked_on",
		"fig6.wa_on",
		"fig7.fresh_aged_ratio",
		"fig8.wa_large",
		"fig9.interventions_small",
		"micro.mount.seeded_reads",
		"micro.cp.flush_speedup_x",
		"micro.write.cpu_per_op_ns",
	} {
		if _, ok := art.Get(name); !ok {
			t.Errorf("metric %q missing", name)
		}
	}
	var hasFrag, hasClock bool
	for _, m := range art.Metrics {
		if strings.HasPrefix(m.Name, "frag.") {
			hasFrag = true
		}
		if strings.HasPrefix(m.Name, "clock.") {
			hasClock = true
		}
	}
	if !hasFrag || !hasClock {
		t.Errorf("metric families missing: frag=%v clock=%v", hasFrag, hasClock)
	}
	// The artifact round-trips byte-stably like any committed BENCH file.
	var a, b bytes.Buffer
	if err := benchfmt.Write(&a, art); err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.Write(&b, art); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("artifact encoding not byte-stable")
	}
}

// The whole pipeline is worker-invariant: artifacts collected at widths 1
// and 8 carry identical metric lists, so benchdiff across widths audits the
// determinism contract end to end.
func TestCollectArtifactWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite twice")
	}
	a1 := collectTiny(t, 1)
	a8 := collectTiny(t, 8)
	if err := benchfmt.CheckComparable(a1, a8); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1.Metrics, a8.Metrics) {
		res := benchfmt.Compare(a1, a8)
		for _, d := range res.Diffs {
			if d.Old != d.New {
				t.Errorf("%s: workers=1 %v, workers=8 %v", d.Name, d.Old, d.New)
			}
		}
		t.Fatal("metric lists diverged across worker widths")
	}
	if res := benchfmt.Compare(a1, a8); res.Violations != 0 {
		t.Fatalf("cross-width compare: %d violations", res.Violations)
	}
}
