package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/benchfmt"
	"waflfs/internal/control"
	"waflfs/internal/obs"
	"waflfs/internal/obs/fragscan"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/obs/slo"
	"waflfs/internal/obs/tsdb"
	"waflfs/internal/parallel"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// CollectArtifact runs the canonical fig6–fig10 suite plus the allocation
// microbenchmarks and condenses the outcome into a schema-versioned
// benchmark artifact: every figure's headline metrics, fragscan
// allocation-quality summaries, per-arm modeled clocks, and provenance.
// Figure tables print to w as they complete.
//
// Every recorded value is worker-count invariant (modeled clocks, stable
// counters, fragscan output), so artifacts collected at different -parallel
// widths are identical — which is how the determinism contract is audited.
// Tolerance bands ride with each metric; benchdiff applies the baseline's
// bands.
func CollectArtifact(cfg Config, name, gitRev string, w io.Writer) (benchfmt.Artifact, error) {
	if cfg.Obs == nil {
		cfg.Obs = &ObsSink{}
	}
	if cfg.Obs.Export == nil {
		cfg.Obs.Export = obs.NewRegistry()
	}
	if cfg.Obs.Frag == nil {
		cfg.Obs.Frag = fragscan.NewRecorder()
	}
	// The invariant watchdogs ride every arm, so a full artifact collection
	// doubles as a zero-violation audit of the allocator caches.
	cfg.Obs.Watchdogs = true
	// The SLO engine rides every arm too: clean figure arms must stay
	// green while the crash matrix burns budget and pages. Modest ring
	// capacity — burn-rate windows only need recent CPs, and the suite
	// arms hundreds of systems (series grow lazily).
	if cfg.Obs.TSDB == nil {
		cfg.Obs.TSDB = tsdb.NewStore(tsdb.Config{Capacity: 128, HistBuckets: tsdb.SuffixFilter(".lat_ns")})
	}
	if cfg.Obs.SLO == nil {
		cfg.Obs.SLO = slo.NewSet(slo.DefaultSpecs())
	}
	// Op tracing rides every arm: sampled span trees feed SLO exemplars and
	// the attr.* stage counters they reconcile against. Default rate keeps
	// the rings cheap; the coverage gate below audits the attribution math.
	if cfg.Obs.OpTrace == nil {
		cfg.Obs.OpTrace = optrace.NewRecorder(optrace.Config{Rate: 16, Seed: cfg.Seed})
	}
	// The closed-loop controller rides every arm when gated in: the stock
	// portfolio must stay idle on clean arms (do-no-harm) while the crash
	// matrix's recovery pages trip the scrub-kick clause (does-act).
	if cfg.Control && cfg.Obs.Control == nil {
		cfg.Obs.Control = control.NewSet(control.DefaultPolicies())
	}

	art := benchfmt.Artifact{
		Schema:  benchfmt.SchemaVersion,
		Name:    name,
		GitRev:  gitRev,
		Seed:    cfg.Seed,
		Scale:   cfg.Scale,
		Workers: cfg.Workers,
	}

	r6 := RunFig6(cfg, w)
	art.Add("fig6.agg_picked_on", r6.AggPickedOn, "frac", 0.10)
	art.Add("fig6.agg_picked_off", r6.AggPickedOff, "frac", 0.10)
	art.Add("fig6.vol_picked_on", r6.VolPickedOn, "frac", 0.10)
	art.Add("fig6.vol_picked_off", r6.VolPickedOff, "frac", 0.10)
	art.Add("fig6.wa_on", r6.WAOn, "x", 0.15)
	art.Add("fig6.wa_off", r6.WAOff, "x", 0.15)
	art.Add("fig6.cpu_per_op_vol_on", float64(r6.CPUPerOpVolOn), "ns", 0.15)
	art.Add("fig6.cpu_per_op_vol_off", float64(r6.CPUPerOpVolOff), "ns", 0.15)
	art.Add("fig6.cache_cpu_frac", r6.CacheCPUFraction, "frac", 0.50)
	art.Add("fig6.agg_tput_gain_pct", r6.AggThroughputGainPct, "pct", 0.35)
	art.Add("fig6.agg_latency_change_pct", r6.AggLatencyChangePct, "pct", 0.35)
	art.Add("fig6.vol_tput_gain_pct", r6.VolThroughputGainPct, "pct", 0.35)
	art.Add("fig6.vol_latency_change_pct", r6.VolLatencyChangePct, "pct", 0.35)
	addCurvePeaks(&art, "fig6", r6.Curves)

	r7 := RunFig7(cfg, w)
	art.Add("fig7.fresh_aged_ratio", r7.FreshToAgedBlockRatio, "x", 0.25)
	if n := len(r7.BlocksPerTetris) / 2; n > 0 {
		art.Add("fig7.blocks_per_tetris_aged", mean(r7.BlocksPerTetris[:n]), "blocks", 0.25)
		art.Add("fig7.blocks_per_tetris_fresh", mean(r7.BlocksPerTetris[n:]), "blocks", 0.25)
	}

	r8 := RunFig8(cfg, w)
	art.Add("fig8.wa_small", r8.WASmall, "x", 0.15)
	art.Add("fig8.wa_large", r8.WALarge, "x", 0.15)
	art.Add("fig8.tput_gain_pct", r8.ThroughputGainPct, "pct", 0.35)
	art.Add("fig8.latency_change_pct", r8.LatencyChangePct, "pct", 0.35)
	addCurvePeaks(&art, "fig8", r8.Curves)

	r9 := RunFig9(cfg, w)
	art.Add("fig9.random_cs_small", float64(r9.RandomChecksumSmall), "count", 0.10)
	art.Add("fig9.random_cs_large", float64(r9.RandomChecksumLarge), "count", 0.10)
	art.Add("fig9.interventions_small", float64(r9.InterventionsSmall), "count", 0.25)
	art.Add("fig9.interventions_large", float64(r9.InterventionsLarge), "count", 0.25)
	art.Add("fig9.tput_gain_pct", r9.ThroughputGainPct, "pct", 0.35)
	art.Add("fig9.latency_change_pct", r9.LatencyChangePct, "pct", 0.35)
	addCurvePeaks(&art, "fig9", r9.Curves)

	r10 := RunFig10(cfg, w)
	addFig10Point(&art, "fig10.size", r10.SizeSweep)
	addFig10Point(&art, "fig10.count", r10.CountSweep)

	// Crash-recovery matrix: exact counts with a zero-tolerance band — any
	// change to how recovery classifies a cell is a regression, and a single
	// silently-divergent cache must fail the benchdiff gate outright.
	rc := RunCrashMatrix(cfg, w)
	ct := rc.Totals()
	art.Add("crash.cells", float64(len(rc.Cells)), "count", 0.001)
	art.Add("crash.divergent", float64(ct.Divergent), "count", 0.001)
	art.Add("crash.clean_loads", float64(ct.CleanLoads), "count", 0.001)
	art.Add("crash.reconstructed", float64(ct.Reconstructed), "count", 0.001)
	art.Add("crash.fallbacks", float64(ct.Fallbacks), "count", 0.001)
	art.Add("crash.stale_fallbacks", float64(ct.Stale), "count", 0.001)
	art.Add("crash.torn_fallbacks", float64(ct.Torn), "count", 0.001)
	art.Add("crash.damage_fallbacks", float64(ct.Damaged), "count", 0.001)

	// Pipelined-CP families (gated: legacy artifacts keep their metric set).
	// The overlap benchmark carries a hard acceptance floor — pipelining
	// that stops paying for itself or diverges from the classic final state
	// fails collection outright — and the overlap-window crash matrix gets
	// the same zero-tolerance counts as the classic one.
	if cfg.Pipeline {
		pb := RunPipelineBench(cfg, w)
		art.Add("cp.pipeline.overlap_gain", pb.OverlapGain, "x", 0.15)
		art.Add("cp.pipeline.generations", float64(pb.Generations), "count", 0.001)
		art.Add("cp.pipeline.alloc_wall_ns", float64(pb.AllocWall), "ns", 0.15)
		art.Add("cp.pipeline.flush_wall_ns", float64(pb.FlushWall), "ns", 0.15)
		art.Add("cp.pipeline.pipelined_wall_ns", float64(pb.PipelinedWall), "ns", 0.15)
		art.Add("cp.pipeline.serial_wall_ns", float64(pb.SerialWall), "ns", 0.15)
		if pb.OverlapGain < 1.3 {
			return art, fmt.Errorf("experiments: pipeline overlap gain %.3f below the 1.3x floor", pb.OverlapGain)
		}
		if !pb.Identical() {
			return art, fmt.Errorf("experiments: pipelined arm diverged from classic (used %d vs %d, written %d vs %d)",
				pb.UsedPipelined, pb.UsedClassic, pb.WrittenPipelined, pb.WrittenClassic)
		}

		rp := RunPipelineCrashMatrix(cfg, w)
		pt := rp.Totals()
		art.Add("crash.pipeline.cells", float64(len(rp.Cells)), "count", 0.001)
		art.Add("crash.pipeline.divergent", float64(pt.Divergent), "count", 0.001)
		art.Add("crash.pipeline.clean_loads", float64(pt.CleanLoads), "count", 0.001)
		art.Add("crash.pipeline.reconstructed", float64(pt.Reconstructed), "count", 0.001)
		art.Add("crash.pipeline.fallbacks", float64(pt.Fallbacks), "count", 0.001)
		art.Add("crash.pipeline.stale_fallbacks", float64(pt.Stale), "count", 0.001)
		art.Add("crash.pipeline.torn_fallbacks", float64(pt.Torn), "count", 0.001)
		art.Add("crash.pipeline.damage_fallbacks", float64(pt.Damaged), "count", 0.001)
		if pt.Divergent > 0 {
			return art, fmt.Errorf("experiments: %d silently divergent caches in the pipelined crash matrix", pt.Divergent)
		}
	}

	microMetrics(cfg, &art, w)

	// Striped-allocator pick throughput (modeled): the shared arm gains
	// nothing from workers, the striped arm's shard-local picks spread.
	ab := RunAllocBench(cfg, w)
	for _, width := range allocBenchWidths {
		art.Add(fmt.Sprintf("alloc.picks_per_sec.w%d", width), ab.Striped.PicksPerSec(width), "picks/s", 0.15)
	}
	art.Add("alloc.shared_picks_per_sec.w8", ab.Shared.PicksPerSec(8), "picks/s", 0.15)
	if w8 := ab.Striped.Wall[8]; w8 > 0 {
		art.Add("alloc.speedup_w8", float64(ab.Shared.Wall[8])/float64(w8), "x", 0.20)
	}
	art.Add("alloc.stalls", float64(ab.Striped.Stalls), "count", 0.25)
	art.Add("alloc.staged_entries", float64(ab.Striped.Staged), "count", 0.25)
	if ab.Striped.Picks > 0 {
		art.Add("alloc.shard_local_frac", float64(ab.Striped.LocalPicks)/float64(ab.Striped.Picks), "frac", 0.15)
	}

	// Fragscan allocation-quality summaries, one set per space stream.
	// fig10's sweeps mount dozens of tiny systems; their streams stay in
	// the recorder but are skipped here to bound artifact size.
	for _, s := range cfg.Obs.Frag.Summaries() {
		if strings.HasPrefix(s.Space, "fig10.") || strings.HasPrefix(s.Space, "crash.") {
			continue
		}
		p := "frag." + s.Space
		art.Add(p+".free_frac", s.FreeFrac, "frac", 0.10)
		art.Add(p+".mean_run", s.MeanRun, "blocks", 0.25)
		art.Add(p+".longest_run", float64(s.LongestRun), "blocks", 0.25)
		art.Add(p+".median_aa_frac", s.MedianAAFrac, "frac", 0.15)
		if s.Picks > 0 {
			art.Add(p+".picked_free_frac", s.PickedFreeFrac, "frac", 0.15)
		}
	}

	// Modeled clocks per experiment arm, read from the shared export
	// registry's stable (worker-invariant) snapshot.
	clockSuffixes := []string{".wafl.cpu_ns", ".wafl.device_busy_ns", ".wafl.cps", ".wafl.blocks_written"}
	for _, m := range cfg.Obs.Export.StableSnapshot().Metrics {
		// fig10's sweeps and the crash matrix mount dozens of tiny systems;
		// their arm clocks are excluded to bound artifact size.
		if strings.HasPrefix(m.Name, "fig10.") || strings.HasPrefix(m.Name, "crash.") || m.Kind != obs.KindCounter {
			continue
		}
		for _, suf := range clockSuffixes {
			if strings.HasSuffix(m.Name, suf) {
				art.Add("clock."+m.Name, float64(m.Value), clockUnit(suf), 0.10)
				break
			}
		}
	}

	// Watchdog audit across every arm (fig10 sweeps and the crash matrix
	// included): checks must have run, and violations are a hard failure —
	// an artifact collected over corrupted caches is worthless as a baseline.
	// The allocbench arms' checks are counted under their own metric: the
	// baseline's tolerance band wins during comparison, so folding newly
	// added arms into the legacy sum would read as drift against every
	// previously committed artifact. Violations stay global.
	var wdChecks, allocChecks, pipeChecks, wdViolations uint64
	for _, m := range cfg.Obs.Export.StableSnapshot().Metrics {
		switch {
		case strings.HasSuffix(m.Name, ".watchdog.checks"):
			switch {
			case strings.HasPrefix(m.Name, "alloc_"):
				allocChecks += m.Value
			case strings.HasPrefix(m.Name, "pipe.") || strings.HasPrefix(m.Name, "crash.pipeline."):
				// The pipelined arms (bench + overlap crash matrix) count
				// under their own metric for the same reason allocbench's
				// do: folding new arms into the legacy sum would read as
				// drift against every previously committed artifact.
				pipeChecks += m.Value
			default:
				wdChecks += m.Value
			}
		case strings.HasSuffix(m.Name, ".watchdog.violations"):
			// The global counter already includes every class counter
			// (gen/dfgen included), so this is the only suffix to sum.
			wdViolations += m.Value
		}
	}
	art.Add("watchdog.checks", float64(wdChecks), "count", 0.25)
	art.Add("watchdog.alloc_checks", float64(allocChecks), "count", 0.25)
	art.Add("watchdog.pipeline_checks", float64(pipeChecks), "count", 0.25)
	art.Add("watchdog.violations", float64(wdViolations), "count", 0.001)
	if wdChecks == 0 {
		return art, fmt.Errorf("experiments: watchdogs armed but performed no checks")
	}
	if wdViolations != 0 {
		return art, fmt.Errorf("experiments: %d watchdog violations during artifact collection", wdViolations)
	}

	// SLO audit: alert totals split by arm prefix, its own metric family
	// (like watchdog.alloc_checks) so the new rows read as additions, not
	// drift, against pre-SLO baselines. Zero-tolerance gates: any alert on
	// a clean arm or a silent crash matrix fails collection outright.
	isPipeCrash := func(sys string) bool { return strings.HasPrefix(sys, "crash.pipeline.") }
	isCrash := func(sys string) bool { return strings.HasPrefix(sys, "crash.") && !isPipeCrash(sys) }
	crashTot := cfg.Obs.SLO.TotalsWhere(isCrash)
	// The pipelined crash matrix counts under its own metric (like
	// watchdog.pipeline_checks): its pages would read as drift against
	// pre-pipeline baselines if folded into slo.pages_crash.
	pipeCrashTot := cfg.Obs.SLO.TotalsWhere(isPipeCrash)
	cleanTot := cfg.Obs.SLO.TotalsWhere(func(sys string) bool { return !strings.HasPrefix(sys, "crash.") })
	art.Add("slo.evaluations", float64(cleanTot.Evaluations+crashTot.Evaluations+pipeCrashTot.Evaluations), "count", 0.25)
	art.Add("slo.instances", float64(cleanTot.Instances+crashTot.Instances+pipeCrashTot.Instances), "count", 0.25)
	art.Add("slo.pages_clean", float64(cleanTot.Pages), "count", 0.001)
	art.Add("slo.warns_clean", float64(cleanTot.Warns), "count", 0.001)
	art.Add("slo.pages_crash", float64(crashTot.Pages), "count", 0.25)
	art.Add("slo.transitions_crash", float64(crashTot.Transitions), "count", 0.25)
	art.Add("slo.pages_crash_pipeline", float64(pipeCrashTot.Pages), "count", 0.25)
	if cleanTot.Evaluations == 0 {
		return art, fmt.Errorf("experiments: SLO engine armed but never evaluated")
	}
	if cleanTot.Pages != 0 || cleanTot.Warns != 0 {
		return art, fmt.Errorf("experiments: %d pages / %d warns on clean arms during artifact collection",
			cleanTot.Pages, cleanTot.Warns)
	}
	if crashTot.Pages == 0 {
		return art, fmt.Errorf("experiments: crash matrix fired no SLO pages — the recovery SLI is dead")
	}
	if cfg.Pipeline && pipeCrashTot.Pages == 0 {
		return art, fmt.Errorf("experiments: pipelined crash matrix fired no SLO pages — the overlap-window recovery SLI is dead")
	}

	// Closed-loop control families (gated: legacy artifacts keep their metric
	// set). The audit splits by arm prefix like the SLO one: the stock
	// portfolio actuating on a clean arm is a zero-tolerance failure (the
	// do-no-harm contract), while a crash matrix that never trips the
	// recovery scrub-kick clause means the controller's SLO coupling is dead.
	if cfg.Control {
		ctlCrash := cfg.Obs.Control.TotalsWhere(func(sys string) bool { return strings.HasPrefix(sys, "crash.") })
		ctlClean := cfg.Obs.Control.TotalsWhere(func(sys string) bool { return !strings.HasPrefix(sys, "crash.") })
		art.Add("control.evaluations", float64(ctlClean.Evaluations+ctlCrash.Evaluations), "count", 0.25)
		art.Add("control.instances", float64(ctlClean.Instances+ctlCrash.Instances), "count", 0.25)
		art.Add("control.actuations_clean", float64(ctlClean.Actuations), "count", 0.001)
		art.Add("control.suppressed_clean", float64(ctlClean.Suppressed), "count", 0.001)
		art.Add("control.actuations_crash", float64(ctlCrash.Actuations), "count", 0.25)
		if ctlClean.Evaluations == 0 {
			return art, fmt.Errorf("experiments: controller armed but never evaluated")
		}
		if ctlClean.Actuations != 0 || ctlClean.Suppressed != 0 {
			return art, fmt.Errorf("experiments: stock portfolio made %d actuations / %d suppressed decisions on clean arms",
				ctlClean.Actuations, ctlClean.Suppressed)
		}
		if ctlCrash.Actuations == 0 {
			return art, fmt.Errorf("experiments: crash matrix tripped no actuations — the recovery scrub-kick clause is dead")
		}

		// Adversarial storm: the controller must actually help under attack.
		// Hard floors, not tolerance bands: a closed loop that costs wall
		// time, or never fires, fails collection outright.
		sb := RunStorm(cfg, w)
		art.Add("control.storm.evaluations", float64(sb.Evaluations), "count", 0.25)
		art.Add("control.storm.actuations", float64(sb.Actuations), "count", 0.25)
		art.Add("control.storm.suppressed", float64(sb.Suppressed), "count", 0.25)
		art.Add("control.storm.wall_static_ns", float64(sb.WallStatic), "ns", 0.10)
		art.Add("control.storm.wall_closed_ns", float64(sb.WallClosed), "ns", 0.10)
		if sb.WallStatic > 0 {
			art.Add("control.storm.wall_ratio", float64(sb.WallClosed)/float64(sb.WallStatic), "x", 0.10)
		}
		if sb.Actuations == 0 {
			return art, fmt.Errorf("experiments: storm fired no actuations — the backlog-shed clause is dead")
		}
		if sb.WallClosed > sb.WallStatic {
			return art, fmt.Errorf("experiments: closed-loop storm wall %v exceeds static %v", sb.WallClosed, sb.WallStatic)
		}
		if !sb.Identical() {
			return art, fmt.Errorf("experiments: storm arms diverged (written %d vs %d)", sb.WrittenClosed, sb.WrittenStatic)
		}
	}

	// Op-trace audit: sampling must have fired, and the per-stage attribution
	// counters must reconcile with the latency histograms they decompose —
	// sum(vol.*.attr.*_ns) == sum(vol.*.lat_ns histogram Sum) across every
	// arm. Coverage is pinned at 1.0 with a 0.001 band; drift means a write
	// path charged latency without attributing it (or vice versa).
	var attrNS, latNS uint64
	for _, m := range cfg.Obs.Export.StableSnapshot().Metrics {
		switch {
		case m.Kind == obs.KindCounter && strings.Contains(m.Name, ".attr.") && strings.HasSuffix(m.Name, "_ns"):
			attrNS += m.Value
		case m.Kind == obs.KindHistogram && strings.HasSuffix(m.Name, ".lat_ns"):
			latNS += m.Hist.Sum
		}
	}
	sampled := cfg.Obs.OpTrace.TotalSampled()
	art.Add("optrace.sampled_ops", float64(sampled), "count", 0.25)
	art.Add("optrace.slow_sampled", float64(cfg.Obs.OpTrace.TotalSlowSampled()), "count", 0.50)
	coverage := 0.0
	if latNS > 0 {
		coverage = float64(attrNS) / float64(latNS)
	}
	art.Add("optrace.attr_coverage", coverage, "frac", 0.001)
	if sampled == 0 {
		return art, fmt.Errorf("experiments: op tracing armed but sampled no ops")
	}
	if coverage < 0.999 || coverage > 1.001 {
		return art, fmt.Errorf("experiments: attribution coverage %.6f — attr.*_ns counters do not reconcile with lat_ns histograms", coverage)
	}

	art.Sort()
	return art, art.Validate()
}

func clockUnit(suffix string) string {
	if strings.HasSuffix(suffix, "_ns") {
		return "ns"
	}
	return "count"
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// addCurvePeaks records each curve's highest-load point.
func addCurvePeaks(art *benchfmt.Artifact, fig string, curves []Curve) {
	for _, c := range curves {
		p := c.Peak()
		label := strings.ReplaceAll(c.Label, " ", "_")
		art.Add(fmt.Sprintf("%s.curve.%s.peak_tput", fig, label), p.Throughput, "ops/s", 0.15)
		art.Add(fmt.Sprintf("%s.curve.%s.peak_latency_ms", fig, label), p.LatencyMs, "ms", 0.20)
	}
}

// addFig10Point records the largest point of a mount-time sweep.
func addFig10Point(art *benchfmt.Artifact, prefix string, sweep []Fig10Point) {
	if len(sweep) == 0 {
		return
	}
	p := sweep[len(sweep)-1]
	art.Add(prefix+".topaa_reads", float64(p.TopAAReads), "count", 0.10)
	art.Add(prefix+".bitmap_pages", float64(p.BitmapPages), "count", 0.10)
	if p.WithTopAA > 0 {
		art.Add(prefix+".speedup_x", float64(p.WithoutTopAA)/float64(p.WithTopAA), "x", 0.25)
	}
}

// microMetrics runs the allocation microbenchmarks: first-CP mount cost
// seeded vs walked (the fig10 model on an aged mid-size aggregate) and CP
// flush concurrency (serial device time vs 8-way makespan — PR 1's headline
// speedup, pinned at a fixed width so the number is comparable across runs
// regardless of cfg.Workers).
func microMetrics(cfg Config, art *benchfmt.Artifact, w io.Writer) {
	tun := cfg.tunablesNamed("micro")
	per := cfg.scaled(1<<17, 1<<14)
	spec := wafl.GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: per, Media: aa.MediaHDD}
	aggBlocks := 2 * 6 * per
	lunBlocks := uint64(float64(aggBlocks) * 0.55)
	s := wafl.NewSystem([]wafl.GroupSpec{spec, spec},
		[]wafl.VolSpec{{Name: "v0", Blocks: lunBlocks * 2}}, tun, cfg.Seed)
	lun := s.Agg.Vols()[0].CreateLUN("l0", lunBlocks)
	rng := rand.New(rand.NewSource(cfg.Seed))
	workload.SequentialFill(s, lun, 1)
	s.CP()
	workload.Age(s, []*wafl.LUN{lun}, rng, 0.3)

	seeded := s.Agg.Remount(true)
	art.Add("micro.mount.seeded_reads", float64(seeded.TopAABlockReads), "count", 0.10)
	art.Add("micro.mount.seeded_ns", float64(mountTime(seeded)), "ns", 0.10)
	walk := s.Agg.Remount(false)
	art.Add("micro.mount.walk_pages", float64(walk.BitmapPagesRead), "count", 0.10)
	art.Add("micro.mount.walk_ns", float64(mountTime(walk)), "ns", 0.10)
	if st := mountTime(seeded); st > 0 {
		art.Add("micro.mount.walk_seeded_ratio", float64(mountTime(walk))/float64(st), "x", 0.25)
	}

	// A write burst, then one CP: per-group flush times give the serial
	// device cost and its 8-way makespan.
	groups := s.Agg.Groups()
	busyBefore := make([]time.Duration, len(groups))
	for i, g := range groups {
		busyBefore[i] = g.Metrics().DeviceBusy
	}
	opsBefore := s.Counters()
	workload.RandomOverwrite(s, []*wafl.LUN{lun}, rng, int(lunBlocks/4), 1)
	s.CP()
	burst := s.Counters().Sub(opsBefore)
	if burst.Ops > 0 {
		art.Add("micro.write.cpu_per_op_ns", float64(burst.CPUTime)/float64(burst.Ops), "ns", 0.10)
	}
	deltas := make([]time.Duration, len(groups))
	var serial time.Duration
	for i, g := range groups {
		deltas[i] = g.Metrics().DeviceBusy - busyBefore[i]
		serial += deltas[i]
	}
	wall8 := parallel.Makespan(deltas, 8)
	art.Add("micro.cp.flush_busy_ns", float64(serial), "ns", 0.10)
	art.Add("micro.cp.flush_wall8_ns", float64(wall8), "ns", 0.10)
	if wall8 > 0 {
		art.Add("micro.cp.flush_speedup_x", float64(serial)/float64(wall8), "x", 0.20)
	}

	// One table so the microbench shows up in the printed run, too.
	rows := []struct {
		name string
		val  float64
		unit string
	}{}
	for _, m := range art.Metrics {
		if strings.HasPrefix(m.Name, "micro.") {
			rows = append(rows, struct {
				name string
				val  float64
				unit string
			}{m.Name, m.Value, m.Unit})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Fprintln(w, "### micro — mount + CP-flush microbenchmarks")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-32s %14.1f %s\n", r.name, r.val, r.unit)
	}
	fmt.Fprintln(w)
}
