package experiments

import (
	"io"
	"strings"
	"testing"

	"waflfs/internal/obs"
)

// An obs-instrumented fig6 run: the four cache arms fan out concurrently,
// each registering under its own prefix, and all sinks fill.
func TestFig6WithObsSinks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	export := obs.NewRegistry()
	tracer := obs.NewTracer()
	var csv strings.Builder
	rec := obs.NewCSVRecorder(&csv)
	cfg := quickConfig()
	cfg.Scale = 0.05
	cfg.Obs = &ObsSink{Export: export, Tracer: tracer, CSV: rec}

	RunFig6(cfg, io.Discard)
	if err := rec.Flush(); err != nil {
		t.Fatalf("csv flush: %v", err)
	}

	for _, arm := range []string{"both", "agg-only", "vol-only", "none"} {
		name := "fig6." + arm + ".wafl.cps"
		if n, ok := export.Value(name); !ok || n == 0 {
			t.Errorf("%s = %d,%v, want > 0", name, n, ok)
		}
	}
	if tracer.Len() == 0 {
		t.Error("tracer recorded no events")
	}
	if !strings.HasPrefix(csv.String(), obs.CSVHeader) || strings.Count(csv.String(), "\n") < 10 {
		t.Errorf("CSV output too small: %d bytes", csv.Len())
	}
	// Events from concurrent arms must still sort canonically by system.
	evs := tracer.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Sys < evs[i-1].Sys {
			t.Fatalf("events not in canonical order at %d: %q after %q", i, evs[i].Sys, evs[i-1].Sys)
		}
	}
}
