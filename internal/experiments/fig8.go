package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"waflfs/internal/aa"
	"waflfs/internal/parallel"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Fig8Result reproduces §4.3's SSD AA-sizing experiment: an aged all-SSD
// system run with the historical HDD AA size (4k stripes, smaller than the
// drive's erase unit) versus an AA sized at a multiple of the erase-block
// size. The paper reports 26% higher throughput, 21% lower latency, and
// halved write amplification for the large AA.
type Fig8Result struct {
	Curves []Curve // "hdd-aa", "large-aa"
	// Write amplification over the measurement window.
	WASmall, WALarge float64
	// Peak-load comparison (large vs small).
	ThroughputGainPct, LatencyChangePct float64
}

// fig8EraseUnit is the SSD's effective erase unit in blocks (32MiB — the
// multi-die superblock granularity at which modern FTLs erase), larger than
// the historical 4k-stripe AA so that Fig. 4(A)'s partial-erase-block
// problem manifests. When the experiment is scaled down, the erase unit and
// AA sizes scale with the device so the ratios (64 erase units per device,
// HDD AA = half an erase unit) are preserved.
const fig8EraseUnit = 8192

// fig8Sizes returns the scaled device, erase-unit, and HDD-AA sizes.
func fig8Sizes(cfg Config) (per, eraseUnit, hddAA uint64) {
	per = cfg.scaled(1<<19, 1<<16)
	eraseUnit = per / 64
	hddAA = eraseUnit / 2
	return per, eraseUnit, hddAA
}

func fig8RunOne(cfg Config, label string, useHDDAA bool) (Curve, float64) {
	tun := cfg.tunablesNamed("fig8." + label)
	per, eraseUnit, hddAA := fig8Sizes(cfg)
	stripesPerAA := uint64(0) // media-derived: 4x erase unit
	if useHDDAA {
		stripesPerAA = hddAA
	}
	spec := wafl.GroupSpec{
		DataDevices:      6,
		ParityDevices:    1,
		BlocksPerDevice:  per,
		Media:            aa.MediaSSD,
		EraseBlockBlocks: eraseUnit,
		StripesPerAA:     stripesPerAA,
		Overprovision:    0.14,
	}
	aggBlocks := 6 * per
	lunBlocks := uint64(float64(aggBlocks) * 0.85)

	s := wafl.NewSystem([]wafl.GroupSpec{spec},
		[]wafl.VolSpec{{Name: "vol0", Blocks: lunBlocks * 3 / 2}}, tun, cfg.Seed)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", lunBlocks)
	rng := rand.New(rand.NewSource(cfg.Seed + 3))

	// Age to 85% full with random traffic (§4.3).
	workload.Age(s, []*wafl.LUN{lun}, rng, 0.8)

	s.ResetMetrics()
	ftl0 := s.FTLTotals()
	ops := int(cfg.scaled(250_000, 25_000))
	mix := workload.OLTP{ReadFraction: 0.5, OpBlocks: 1} // 4KiB random reads and writes
	m := measure(s, func() {
		mix.Run(s, []*wafl.LUN{lun}, rng, ops)
		s.CP()
	})
	ftl1 := s.FTLTotals()
	wa := 0.0
	if dh := ftl1.HostWrites - ftl0.HostWrites; dh > 0 {
		wa = float64(ftl1.NANDWrites-ftl0.NANDWrites) / float64(dh)
	}
	return curveFrom(label, m, cfg), wa
}

// RunFig8 regenerates Figure 8.
func RunFig8(cfg Config, w io.Writer) *Fig8Result {
	if cfg.DeviceParallel == 0 {
		cfg.DeviceParallel = 4
	}
	// The two AA sizings are independent arms; fan them out.
	type fig8Run struct {
		curve Curve
		wa    float64
	}
	arms := []struct {
		label    string
		useHDDAA bool
	}{{"hdd-aa", true}, {"large-aa", false}}
	runs := parallel.Map(cfg.Workers, len(arms), func(i int) fig8Run {
		c, wa := fig8RunOne(cfg, arms[i].label, arms[i].useHDDAA)
		return fig8Run{c, wa}
	})
	small, waSmall := runs[0].curve, runs[0].wa
	large, waLarge := runs[1].curve, runs[1].wa

	res := &Fig8Result{
		Curves:  []Curve{small, large},
		WASmall: waSmall,
		WALarge: waLarge,
	}
	sp, lp := small.Peak(), large.Peak()
	res.ThroughputGainPct = gain(lp.Throughput, sp.Throughput)
	res.LatencyChangePct = gain(lp.LatencyMs, sp.LatencyMs)

	printCurves(w, "Fig 8: SSD AA sizing (4KiB random R/W, aged to 85%)", res.Curves)
	tb := stats.Table{Title: "Fig 8 / §4.3 headline metrics", Columns: []string{"metric", "paper", "measured"}}
	tb.AddRow("peak throughput gain (large vs HDD AA)", "+26%", fmt.Sprintf("%+.1f%%", res.ThroughputGainPct))
	tb.AddRow("peak latency change (large vs HDD AA)", "-21%", fmt.Sprintf("%+.1f%%", res.LatencyChangePct))
	tb.AddRow("write amplification, HDD-sized AA", "2x of large", fmt.Sprintf("%.2f", res.WASmall))
	tb.AddRow("write amplification, large AA", "half of HDD", fmt.Sprintf("%.2f", res.WALarge))
	tb.AddRow("WA ratio (HDD/large)", "~2.0", fmt.Sprintf("%.2f", stats.Ratio(res.WASmall, res.WALarge)))
	fmt.Fprintln(w, tb.String())
	return res
}
