package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"waflfs/internal/aa"
	"waflfs/internal/faultinject"
	"waflfs/internal/parallel"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Pipelined crash matrix: the overlap window is the new failure surface the
// pipelined CP opens — writes are allocating into generation n+1 while
// generation n's sealed banks flush. A crash there leaves a committed CP
// whose metafile saves were dropped *and* a sealed generation that never
// reached the devices; recovery must still classify every space as a clean
// load, a reconstruction, or a fallback, with the bitmap metafiles as
// ground truth. One cell per overlap phase × media fault, each running the
// canonical scenario below with the crash pinned to the first overlapped
// boundary.

// pipelineCrashCP is the boundary ordinal the matrix crashes in: the first
// CP of the scenario whose allocation overlaps an in-flight flush.
// Boundaries 1–3 are the fill CP, its drain, and the quiesced re-churn CP;
// boundary 4 is the first to enter overlap_alloc and overlap_flush.
const pipelineCrashCP = 4

// RunPipelineFaultScenario executes one crash-and-recover cycle with
// pipelined CPs under the given plan. The shape mirrors RunFaultScenario
// with the drains the pipeline requires: TierOut and Remount only happen at
// quiesced boundaries, and the post-crash Drain models the in-flight
// generation completing its flush with every metafile save dropped.
func RunPipelineFaultScenario(cfg Config, plan faultinject.Plan, name string) CrashCell {
	cell := CrashCell{Phase: plan.CrashPhase, Fault: plan.Fault.String()}
	tun := cfg.tunablesNamed(name)
	tun.Faults = &plan
	// CPs are driven explicitly so the crash lands in a known boundary.
	tun.CPEveryOps = 1 << 30
	// Delayed virtual frees widen the surface the crash interrupts; the
	// pipeline adds the sealed-generation delayed-free queue on top.
	tun.DelayedVirtFrees = true
	tun.Pipeline = true

	per := cfg.scaled(1<<13, 1<<10)
	// Small AAs keep the per-group AA count meaningful at tiny test scales.
	spec := wafl.GroupSpec{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: per,
		Media: aa.MediaHDD, StripesPerAA: 64}
	volBlocks := uint64(4) * aa.RAIDAgnosticBlocks
	s := wafl.NewSystem([]wafl.GroupSpec{spec, spec},
		[]wafl.VolSpec{{Name: "v0", Blocks: volBlocks}, {Name: "v1", Blocks: volBlocks}},
		tun, plan.Seed)
	// An object pool brings the pool's sealed flush banks into every
	// committed generation.
	s.Agg.AddObjectPool(wafl.PoolSpec{Blocks: 2 * aa.RAIDAgnosticBlocks})
	rng := rand.New(rand.NewSource(plan.Seed))
	lunBlocks := uint64(float64(2*3*per) * 0.3)
	luns := []*wafl.LUN{
		s.Agg.Vols()[0].CreateLUN("l0", lunBlocks),
		s.Agg.Vols()[1].CreateLUN("l1", lunBlocks),
	}
	for _, l := range luns {
		workload.SequentialFill(s, l, 8)
	}
	s.CP()    // boundary 1: quiesced alloc, seals generation 1
	s.Drain() // boundary 2: flushes generation 1 — quiesced for TierOut
	// Tier a cold range out so the pool's AA cache has real content.
	s.TierOut(luns[0], func(lba uint64) bool { return lba < lunBlocks/4 })

	// Churn so the crash-boundary flush re-scores every space: a metafile
	// whose save the crash drops is then genuinely stale.
	workload.RandomOverwrite(s, luns, rng, 512, 1)
	s.CP() // boundary 3: quiesced alloc, seals generation 2 (pool included)
	workload.RandomOverwrite(s, luns, rng, 512, 1)
	s.CP() // boundary 4: the overlap window — the plan's crash fires here
	cell.Crashed = s.Agg.Injector().Crashed()
	// The in-flight generation completes its flush into the dirty failover:
	// every data write lands, every metafile save is dropped.
	s.Drain() // boundary 5

	// The dirty failover's media fault lands on the surviving metafiles.
	if dmg, err := s.Agg.ApplyPlannedDamage(); err == nil && dmg.Kind != faultinject.FaultNone {
		cell.Damage = dmg.String()
	}

	ms := s.Agg.Remount(true)
	cell.Spaces = len(s.Agg.Groups()) + len(s.Agg.Vols()) + 1 // +1: the pool
	cell.Reconstructed = ms.Reconstructed
	cell.Fallbacks = ms.Fallbacks
	cell.Stale = ms.StaleFallbacks
	cell.Torn = ms.TornFallbacks
	cell.Damaged = ms.DamageFallbacks
	cell.Missing = ms.MissingFallbacks
	cell.CleanLoads = cell.Spaces - ms.Fallbacks - ms.Reconstructed

	note := func(rep wafl.ScrubReport) {
		for _, d := range rep.Divergent() {
			cell.Divergent++
			if cell.FirstDivergence == "" {
				cell.FirstDivergence = d.Space + ": " + d.Divergence
			}
		}
	}
	note(s.Agg.Scrub())

	// Recovery must leave a writable, still-pipelined system: finish the
	// background fill, churn, a clean generation end to end (seal + drain),
	// and a second scrub over the post-recovery state.
	s.Agg.CompleteBackgroundFill()
	workload.RandomOverwrite(s, luns, rng, 256, 1)
	s.CP()
	s.Drain()
	note(s.Agg.Scrub())
	return cell
}

// RunPipelineCrashMatrix sweeps both overlap phases × every fault kind.
// Cells are independent pipelined systems fanned out over the work pool;
// the result is identical at any worker count.
func RunPipelineCrashMatrix(cfg Config, w io.Writer) *CrashMatrixResult {
	res := &CrashMatrixResult{Phases: faultinject.OverlapPhases()}
	for _, k := range faultinject.Kinds() {
		res.Faults = append(res.Faults, k.String())
	}

	type job struct {
		phase string
		fault faultinject.Kind
	}
	var jobs []job
	for _, p := range res.Phases {
		for _, k := range faultinject.Kinds() {
			jobs = append(jobs, job{p, k})
		}
	}
	res.Cells = parallel.Map(cfg.Workers, len(jobs), func(i int) CrashCell {
		j := jobs[i]
		plan := faultinject.Plan{
			Seed:       cfg.Seed + int64(i)*1001,
			CrashPhase: j.phase,
			CrashCP:    pipelineCrashCP,
			Fault:      j.fault,
		}
		return RunPipelineFaultScenario(cfg, plan, fmt.Sprintf("crash.pipeline.%s.%s", j.phase, j.fault))
	})

	printCrashMatrix(w,
		"Pipelined crash matrix: mount outcomes after a crash in the overlap window × media fault (Nc clean, Nr reconstructed, Nf fallback)",
		res)
	return res
}
