package experiments

import (
	"io"
	"strings"
	"testing"
)

// The storm benchmark's artifact gates, pinned at test scale: the adversarial
// workload must actually trip the backlog policy (≥1 actuation), shedding
// must not cost wall time (closed ≤ static), and the controller must never
// perturb the write stream itself.
func TestRunStormGates(t *testing.T) {
	if testing.Short() {
		t.Skip("storm benchmark is slow")
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	cfg.Workers = 2
	var buf strings.Builder
	b := RunStorm(cfg, &buf)

	if b.Actuations == 0 {
		t.Fatalf("storm never actuated:\n%s", buf.String())
	}
	if b.WallClosed > b.WallStatic {
		t.Fatalf("closed-loop wall %v exceeds static %v:\n%s",
			b.WallClosed, b.WallStatic, buf.String())
	}
	if !b.Identical() {
		t.Fatalf("write streams diverged: static %d, closed %d",
			b.WrittenStatic, b.WrittenClosed)
	}
	if b.BudgetEnd >= b.Budget {
		t.Fatalf("shed policy never reduced the budget: %d → %d", b.Budget, b.BudgetEnd)
	}
	if b.BudgetEnd < 128 {
		t.Fatalf("budget shed under the policy floor: %d", b.BudgetEnd)
	}
	if b.PendingClosed < b.PendingStatic {
		t.Errorf("closed arm shed reclaim but holds the smaller backlog: %d < %d",
			b.PendingClosed, b.PendingStatic)
	}
	if b.LastRecord == "" {
		t.Error("no fired actuation record in provenance ring")
	}

	// Determinism: the identical config reproduces the identical benchmark.
	b2 := RunStorm(cfg, io.Discard)
	if b2 != b {
		t.Fatalf("storm not deterministic:\n%+v\n%+v", b, b2)
	}

	// Worker-width invariance: the modeled walls and controller decisions
	// must not move with the fan-out.
	cfg.Workers = 1
	if b1 := RunStorm(cfg, io.Discard); b1 != b {
		t.Fatalf("storm varies with worker count:\n%+v\n%+v", b, b1)
	}
}
