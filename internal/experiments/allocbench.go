package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// The allocator pick-path microbenchmark: the same aged workload runs twice —
// once on the classic shared pick path (AllocShards=1) and once striped
// (AllocShards=8) — and the modeled pick wall-clock is compared at 1, 8,
// and 32 workers. Contention is modeled, not measured: every pick charges
// CPUPerCacheOp to its shard's busy vector, AllocPickWall schedules the
// vectors over W workers (parallel.Makespan), and synchronous stalls
// serialize on top. The classic path charges all picks to one vector per
// space, so it gains nothing from extra workers — the striped win at W=8 is
// exactly the contention the per-shard queues remove, while the refill
// pipeline keeps the staging cost off the pick path.

// AllocBenchResult is one arm's measurement-phase profile.
type AllocBenchResult struct {
	// Shards is the stripe width of this arm (1 = shared).
	Shards int
	// Picks counts AA picks across every space in the measurement phase.
	Picks uint64
	// LocalPicks is the shard-local subset; Stalls the synchronous refills;
	// Staged the entries moved by the pipelined refill stage.
	LocalPicks, Stalls, Staged uint64
	// Wall[w] is the modeled pick wall-clock at w workers.
	Wall map[int]time.Duration
}

// PicksPerSec returns the modeled pick throughput at w workers.
func (r AllocBenchResult) PicksPerSec(w int) float64 {
	d := r.Wall[w]
	if d <= 0 {
		return 0
	}
	return float64(r.Picks) / d.Seconds()
}

// AllocBench is the two-arm comparison.
type AllocBench struct {
	Shared, Striped AllocBenchResult
}

// allocBenchWidths are the worker widths the artifact reports.
var allocBenchWidths = []int{1, 8, 32}

// RunAllocBench ages one system per arm under an identical seeded workload
// (sequential fill, churn, then a measured overwrite burst) and profiles the
// measurement phase's pick traffic.
func RunAllocBench(cfg Config, w io.Writer) AllocBench {
	run := func(name string, shards int) AllocBenchResult {
		tun := cfg.tunablesNamed(name)
		tun.AllocShards = shards
		tun.AllocBatch = 4
		per := cfg.scaled(1<<16, 1<<13)
		// 16-stripe AAs keep the AA count far above shards × batch, so the
		// steady state is shard-local picks, not rebalances.
		spec := wafl.GroupSpec{DataDevices: 4, ParityDevices: 1, BlocksPerDevice: per,
			Media: aa.MediaHDD, StripesPerAA: 16}
		aggBlocks := 2 * 4 * per
		lunBlocks := uint64(float64(aggBlocks) * 0.50)
		s := wafl.NewSystem([]wafl.GroupSpec{spec, spec},
			[]wafl.VolSpec{{Name: "v0", Blocks: lunBlocks * 2}}, tun, cfg.Seed)
		lun := s.Agg.Vols()[0].CreateLUN("l0", lunBlocks)
		rng := rand.New(rand.NewSource(cfg.Seed))
		workload.SequentialFill(s, lun, 1)
		s.CP()
		workload.Age(s, []*wafl.LUN{lun}, rng, 0.5)

		// Measurement phase: counters (including the per-shard busy
		// vectors) restart at zero, then a uniform overwrite burst drives
		// steady-state picks with frees landing in the ledgers.
		s.ResetMetrics()
		workload.RandomOverwrite(s, []*wafl.LUN{lun}, rng, int(lunBlocks/2), 1)
		s.CP()

		res := AllocBenchResult{Shards: shards, Wall: make(map[int]time.Duration)}
		for _, p := range s.Agg.AllocProfiles() {
			res.Picks += p.Picks
			res.LocalPicks += p.LocalPicks
			res.Stalls += p.Stalls
			res.Staged += p.Staged
		}
		for _, width := range allocBenchWidths {
			res.Wall[width] = s.Agg.AllocPickWall(width)
		}
		return res
	}

	b := AllocBench{
		Shared:  run("alloc_shared", 1),
		Striped: run("alloc_striped", 8),
	}

	fmt.Fprintln(w, "### alloc — striped pick-path microbenchmark (modeled contention)")
	fmt.Fprintf(w, "  %-10s %10s %10s %8s %8s %12s %12s %12s\n",
		"arm", "picks", "local", "stalls", "staged", "wall_w1", "wall_w8", "wall_w32")
	for _, a := range []struct {
		name string
		r    AllocBenchResult
	}{{"shared", b.Shared}, {"striped", b.Striped}} {
		fmt.Fprintf(w, "  %-10s %10d %10d %8d %8d %12v %12v %12v\n",
			a.name, a.r.Picks, a.r.LocalPicks, a.r.Stalls, a.r.Staged,
			a.r.Wall[1], a.r.Wall[8], a.r.Wall[32])
	}
	if w8 := b.Striped.Wall[8]; w8 > 0 {
		fmt.Fprintf(w, "  striped speedup at 8 workers: %.2fx\n\n",
			float64(b.Shared.Wall[8])/float64(w8))
	}
	return b
}
