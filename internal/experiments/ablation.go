package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"waflfs/internal/aa"
	"waflfs/internal/hbps"
	"waflfs/internal/parallel"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Ablations probe the design choices the paper motivates qualitatively:
//
//   - HBPS bin width (§3.3.2): narrower bins tighten the error margin
//     (binWidth/maxScore) but raise per-update structure churn; the paper
//     chose 1k-of-32k (3.125%) and found within-bin sorting "negligible".
//   - AA size (§3.2): smaller AAs give the cache finer differentiation
//     between regions (better picks) but multiply tracking state; 4k
//     stripes was found to work well for HDDs.
//   - The fragmented-RAID-group write bias (§3.3.1): the threshold below
//     which a group is skipped trades aggregate bandwidth against
//     partial-stripe cost.

// AblationResult bundles the three studies.
type AblationResult struct {
	BinWidth  []BinWidthPoint
	AASize    []AASizePoint
	Threshold []ThresholdPoint
}

// BinWidthPoint measures HBPS selection quality/cost for one bin width.
type BinWidthPoint struct {
	BinWidth uint32
	// MaxRegret is the worst observed (bestScore - providedScore).
	MaxRegret uint32
	// MeanRegret averages the same over all probes.
	MeanRegret float64
	// GuaranteeBound is the structural bound (= bin width).
	GuaranteeBound uint32
}

// AASizePoint measures allocator pick quality for one AA size.
type AASizePoint struct {
	StripesPerAA uint64
	NumAAs       int
	// PickedFreeFraction is the mean free fraction of chosen AAs on the
	// aged system.
	PickedFreeFraction float64
	// FullStripeFraction over the measurement window.
	FullStripeFraction float64
	// HeapBytes approximates cache memory (16 bytes per tracked AA).
	HeapBytes int
}

// ThresholdPoint measures the §4.2 bias for one MinAAScoreFraction.
type ThresholdPoint struct {
	Threshold        float64
	FreshToAgedRatio float64
	AgedFullStripes  float64
}

// RunAblations runs all three studies and prints their tables.
func RunAblations(cfg Config, w io.Writer) *AblationResult {
	res := &AblationResult{
		BinWidth:  ablateBinWidth(cfg),
		AASize:    ablateAASize(cfg),
		Threshold: ablateThreshold(cfg),
	}

	tb := stats.Table{
		Title:   "Ablation: HBPS bin width (32k score space, 1000-entry list, random churn)",
		Columns: []string{"bin width", "error bound", "max regret", "mean regret"},
	}
	for _, p := range res.BinWidth {
		tb.AddRow(p.BinWidth, p.GuaranteeBound, p.MaxRegret, fmt.Sprintf("%.1f", p.MeanRegret))
	}
	fmt.Fprintln(w, tb.String())

	tb = stats.Table{
		Title:   "Ablation: RAID-aware AA size (aged HDD aggregate)",
		Columns: []string{"stripes/AA", "AAs", "picked free frac", "full-stripe frac", "cache bytes"},
	}
	for _, p := range res.AASize {
		tb.AddRow(p.StripesPerAA, p.NumAAs,
			fmt.Sprintf("%.3f", p.PickedFreeFraction),
			fmt.Sprintf("%.3f", p.FullStripeFraction), p.HeapBytes)
	}
	fmt.Fprintln(w, tb.String())

	tb = stats.Table{
		Title:   "Ablation: fragmented-group write bias threshold (Fig 7 setup)",
		Columns: []string{"threshold", "fresh/aged blocks", "aged full-stripe frac"},
	}
	for _, p := range res.Threshold {
		tb.AddRow(fmt.Sprintf("%.2f", p.Threshold),
			fmt.Sprintf("%.2f", p.FreshToAgedRatio),
			fmt.Sprintf("%.3f", p.AgedFullStripes))
	}
	fmt.Fprintln(w, tb.String())
	return res
}

// ablateBinWidth churns an HBPS at several bin widths and records the
// regret of its picks against the true best score. Each width owns its
// structure and rng, so the points fan out over the work pool.
func ablateBinWidth(cfg Config) []BinWidthPoint {
	widths := []uint32{256, 1024, 4096, 8192}
	return parallel.Map(cfg.Workers, len(widths), func(wi int) BinWidthPoint {
		bw := widths[wi]
		h := hbps.New(hbps.Config{MaxScore: 32768, BinWidth: bw, ListCap: 1000})
		rng := rand.New(rand.NewSource(cfg.Seed))
		const n = 4000
		scores := make([]uint32, n)
		for i := range scores {
			scores[i] = uint32(rng.Intn(32769))
			h.Track(aa.ID(i), scores[i])
		}
		p := BinWidthPoint{BinWidth: bw, GuaranteeBound: bw}
		var regretSum float64
		probes := 0
		for round := 0; round < 3000; round++ {
			id := aa.ID(rng.Intn(n))
			ns := uint32(rng.Intn(32769))
			h.Update(id, scores[id], ns)
			scores[id] = ns
			if round%10 == 0 {
				got, ok := h.PeekBest()
				if !ok {
					continue
				}
				var best uint32
				for _, s := range scores {
					if s > best {
						best = s
					}
				}
				regret := best - scores[got]
				if regret > p.MaxRegret {
					p.MaxRegret = regret
				}
				regretSum += float64(regret)
				probes++
			}
		}
		if probes > 0 {
			p.MeanRegret = regretSum / float64(probes)
		}
		return p
	})
}

// ablateAASize ages one HDD aggregate per AA size and measures pick quality
// and stripe efficiency. Each size ages its own System, so the points fan
// out over the work pool.
func ablateAASize(cfg Config) []AASizePoint {
	per := cfg.scaled(1<<17, 1<<14)
	sizes := []uint64{1024, 4096, 16384}
	return parallel.Map(cfg.Workers, len(sizes), func(si int) AASizePoint {
		stripes := sizes[si]
		tun := cfg.tunablesNamed(fmt.Sprintf("ablate.aasize%d", stripes))
		spec := wafl.GroupSpec{
			DataDevices: 6, ParityDevices: 1, BlocksPerDevice: per,
			Media: aa.MediaHDD, StripesPerAA: stripes,
		}
		lunBlocks := uint64(float64(6*per) * 0.6)
		s := wafl.NewSystem([]wafl.GroupSpec{spec},
			[]wafl.VolSpec{{Name: "v", Blocks: lunBlocks * 2}}, tun, cfg.Seed)
		lun := s.Agg.Vols()[0].CreateLUN("l", lunBlocks)
		rng := rand.New(rand.NewSource(cfg.Seed + 6))
		workload.Age(s, []*wafl.LUN{lun}, rng, 0.8)

		s.ResetMetrics()
		g := s.Agg.Groups()[0]
		preFull, prePartial := g.RAIDStats().FullStripes, g.RAIDStats().PartialStripes
		workload.RandomOverwrite(s, []*wafl.LUN{lun}, rng, int(cfg.scaled(80_000, 10_000)), 1)
		s.CP()

		full := g.RAIDStats().FullStripes - preFull
		partial := g.RAIDStats().PartialStripes - prePartial
		p := AASizePoint{
			StripesPerAA:       stripes,
			NumAAs:             g.Topology().NumAAs(),
			PickedFreeFraction: g.Metrics().PickedScoreFraction,
			HeapBytes:          16 * g.Topology().NumAAs(),
		}
		if full+partial > 0 {
			p.FullStripeFraction = float64(full) / float64(full+partial)
		}
		return p
	})
}

// ablateThreshold reruns the Fig 7 imbalanced-aging setup across bias
// thresholds, one independent System per threshold, fanned over the pool.
func ablateThreshold(cfg Config) []ThresholdPoint {
	thresholds := []float64{0, 0.05, 0.25, 0.5}
	return parallel.Map(cfg.Workers, len(thresholds), func(ti int) ThresholdPoint {
		th := thresholds[ti]
		r := runFig7With(cfg, th, fmt.Sprintf("ablate.bias%g", th))
		aged := r.BlocksPerTetris[0]
		agedFull := 0.0
		if aged > 0 {
			// blocks/tetris over the tetris capacity approximates stripe
			// fill for the aged groups (6 data devices, 64 stripes).
			agedFull = aged / 384.0
		}
		return ThresholdPoint{
			Threshold:        th,
			FreshToAgedRatio: r.FreshToAgedBlockRatio,
			AgedFullStripes:  agedFull,
		}
	})
}
