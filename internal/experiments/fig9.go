package experiments

import (
	"fmt"
	"io"

	"waflfs/internal/aa"
	"waflfs/internal/parallel"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Fig9Result reproduces §4.3's SMR data point: sequential writes to an
// unaged file system on drive-managed SMR drives with AZCS, comparing the
// historical HDD AA size (whose on-disk span is not aligned to AZCS
// regions, forcing random checksum-block writes at every AA switch) against
// an AA larger than the shingle zone and aligned to AZCS regions. The paper
// reports 7% higher drive throughput and 11% lower latency.
type Fig9Result struct {
	Curves []Curve // "hdd-aa", "smr-aa"
	// Random (out-of-band) checksum-block writes observed per config.
	RandomChecksumSmall, RandomChecksumLarge uint64
	// Shingle-zone interventions observed per config.
	InterventionsSmall, InterventionsLarge uint64
	// Peak-load comparison (large/aligned vs small).
	ThroughputGainPct, LatencyChangePct float64
}

func fig9RunOne(cfg Config, label string, stripesPerAA uint64) (Curve, uint64, uint64) {
	tun := cfg.tunablesNamed("fig9." + label)
	per := cfg.scaled(1<<19, 1<<17)
	spec := wafl.GroupSpec{
		DataDevices:     3,
		ParityDevices:   1,
		BlocksPerDevice: per,
		Media:           aa.MediaSMR,
		ZoneBlocks:      16384, // 64MiB shingle zones
		AZCS:            true,
		StripesPerAA:    stripesPerAA, // 0 = media-derived (2 zones, AZCS-aligned)
	}
	aggBlocks := 3 * per
	lunBlocks := uint64(float64(aggBlocks) * 0.70)

	s := wafl.NewSystem([]wafl.GroupSpec{spec},
		[]wafl.VolSpec{{Name: "vol0", Blocks: lunBlocks + 8*aa.RAIDAgnosticBlocks}}, tun, cfg.Seed)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", lunBlocks)

	// Unaged system, sequential writes only (64KiB operations).
	s.ResetMetrics()
	m := measure(s, func() {
		workload.SequentialFill(s, lun, 16)
		s.CP()
	})
	var rndCS, interventions uint64
	for _, g := range s.Agg.Groups() {
		gm := g.Metrics()
		rndCS += gm.AZCSRandom
		for _, d := range g.Devices() {
			if smr, ok := d.(interface{ Interventions() uint64 }); ok {
				interventions += smr.Interventions()
			}
		}
	}
	return curveFrom(label, m, cfg), rndCS, interventions
}

// RunFig9 regenerates Figure 9.
func RunFig9(cfg Config, w io.Writer) *Fig9Result {
	// The two AA sizings are independent arms; fan them out.
	type fig9Run struct {
		curve         Curve
		rndCS, interv uint64
	}
	arms := []struct {
		label   string
		stripes uint64
	}{{"hdd-aa", aa.DefaultHDDStripes}, {"smr-aa", 0}}
	runs := parallel.Map(cfg.Workers, len(arms), func(i int) fig9Run {
		c, cs, iv := fig9RunOne(cfg, arms[i].label, arms[i].stripes)
		return fig9Run{c, cs, iv}
	})
	small, csSmall, ivSmall := runs[0].curve, runs[0].rndCS, runs[0].interv
	large, csLarge, ivLarge := runs[1].curve, runs[1].rndCS, runs[1].interv

	res := &Fig9Result{
		Curves:              []Curve{small, large},
		RandomChecksumSmall: csSmall,
		RandomChecksumLarge: csLarge,
		InterventionsSmall:  ivSmall,
		InterventionsLarge:  ivLarge,
	}
	sp, lp := small.Peak(), large.Peak()
	res.ThroughputGainPct = gain(lp.Throughput, sp.Throughput)
	res.LatencyChangePct = gain(lp.LatencyMs, sp.LatencyMs)

	printCurves(w, "Fig 9: SMR AA sizing (sequential writes, unaged, AZCS)", res.Curves)
	tb := stats.Table{Title: "Fig 9 / §4.3 headline metrics", Columns: []string{"metric", "paper", "measured"}}
	tb.AddRow("peak throughput gain (SMR vs HDD AA)", "+7%", fmt.Sprintf("%+.1f%%", res.ThroughputGainPct))
	tb.AddRow("peak latency change (SMR vs HDD AA)", "-11%", fmt.Sprintf("%+.1f%%", res.LatencyChangePct))
	tb.AddRow("random checksum writes, HDD AA", ">0", fmt.Sprint(res.RandomChecksumSmall))
	tb.AddRow("random checksum writes, SMR AA", "0", fmt.Sprint(res.RandomChecksumLarge))
	tb.AddRow("zone interventions, HDD AA", "-", fmt.Sprint(res.InterventionsSmall))
	tb.AddRow("zone interventions, SMR AA", "-", fmt.Sprint(res.InterventionsLarge))
	fmt.Fprintln(w, tb.String())
	return res
}
