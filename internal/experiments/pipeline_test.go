package experiments

import (
	"io"
	"reflect"
	"testing"

	"waflfs/internal/faultinject"
)

func TestPipelineBenchGainAndIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	b := RunPipelineBench(cfg, io.Discard)
	if b.Generations != pipelineBenchRounds {
		t.Fatalf("generations = %d, want %d", b.Generations, pipelineBenchRounds)
	}
	if !b.Identical() {
		t.Fatalf("arms diverged: used %d vs %d, written %d vs %d",
			b.UsedPipelined, b.UsedClassic, b.WrittenPipelined, b.WrittenClassic)
	}
	if b.OverlapGain < 1.3 {
		t.Errorf("overlap gain %.3f < 1.3 (alloc %v, flush %v)", b.OverlapGain, b.AllocWall, b.FlushWall)
	}
	if b.SerialWall != b.AllocWall+b.FlushWall {
		t.Errorf("serial wall %v != alloc %v + flush %v", b.SerialWall, b.AllocWall, b.FlushWall)
	}
}

func TestPipelineCrashMatrixNoSilentDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunPipelineCrashMatrix(crashConfig(), io.Discard)
	if want := len(faultinject.OverlapPhases()) * len(faultinject.Kinds()); len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	if div := res.Divergent(); len(div) > 0 {
		t.Fatalf("silent divergence in %d cells; first: %s × %s: %s",
			len(div), div[0].Phase, div[0].Fault, div[0].FirstDivergence)
	}
	for _, c := range res.Cells {
		if !c.Crashed {
			t.Errorf("%s × %s: crash point never fired", c.Phase, c.Fault)
		}
		if got := c.Stale + c.Torn + c.Damaged + c.Missing; got != c.Fallbacks {
			t.Errorf("%s × %s: fallback classes sum %d != %d", c.Phase, c.Fault, got, c.Fallbacks)
		}
		if c.CleanLoads+c.Reconstructed+c.Fallbacks != c.Spaces {
			t.Errorf("%s × %s: outcome classes don't cover %d spaces: %+v", c.Phase, c.Fault, c.Spaces, c)
		}
	}
}

func TestPipelineCrashMatrixDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := crashConfig()
	cfg.Workers = 1
	serial := RunPipelineCrashMatrix(cfg, io.Discard)
	cfg.Workers = 8
	wide := RunPipelineCrashMatrix(cfg, io.Discard)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("pipelined crash matrix differs between 1 and 8 workers")
	}
}
