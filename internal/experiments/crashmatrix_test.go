package experiments

import (
	"io"
	"reflect"
	"testing"

	"waflfs/internal/faultinject"
)

func crashConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	return cfg
}

func TestCrashMatrixNoSilentDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunCrashMatrix(crashConfig(), io.Discard)
	if want := len(faultinject.CPPhases()) * len(faultinject.Kinds()); len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	if div := res.Divergent(); len(div) > 0 {
		t.Fatalf("silent divergence in %d cells; first: %s × %s: %s",
			len(div), div[0].Phase, div[0].Fault, div[0].FirstDivergence)
	}
	t.Run("structure", func(t *testing.T) {
		for _, c := range res.Cells {
			if !c.Crashed {
				t.Errorf("%s × %s: crash point never fired", c.Phase, c.Fault)
			}
			if got := c.Stale + c.Torn + c.Damaged + c.Missing; got != c.Fallbacks {
				t.Errorf("%s × %s: fallback classes sum %d != %d", c.Phase, c.Fault, got, c.Fallbacks)
			}
			if c.CleanLoads+c.Reconstructed+c.Fallbacks != c.Spaces {
				t.Errorf("%s × %s: outcome classes don't cover %d spaces: %+v", c.Phase, c.Fault, c.Spaces, c)
			}
			switch c.Phase {
			case faultinject.PhaseAlloc:
				if c.CleanLoads != 0 {
					t.Errorf("alloc-phase crash × %s: %d clean loads, want 0", c.Fault, c.CleanLoads)
				}
			case faultinject.PhaseCommit:
				if c.Fault == faultinject.FaultNone.String() && c.Fallbacks+c.Reconstructed != 0 {
					t.Errorf("commit × none: fallbacks %d reconstructed %d, want clean CP", c.Fallbacks, c.Reconstructed)
				}
			}
		}
	})
}

func TestCrashMatrixDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := crashConfig()
	cfg.Workers = 1
	serial := RunCrashMatrix(cfg, io.Discard)
	cfg.Workers = 8
	wide := RunCrashMatrix(cfg, io.Discard)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("crash matrix differs between 1 and 8 workers")
	}
}

func TestRunFaultScenarioSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	plan, err := faultinject.ParsePlan("phase=flush,fault=torn,cp=2,seed=17")
	if err != nil {
		t.Fatal(err)
	}
	cell := RunFaultScenario(crashConfig(), plan, "scenario.flush.torn")
	if !cell.Crashed {
		t.Fatal("crash never fired")
	}
	if cell.Divergent > 0 {
		t.Fatalf("silent divergence: %s", cell.FirstDivergence)
	}
	if cell.Fallbacks == 0 {
		t.Fatal("flush-phase crash produced no fallbacks")
	}
}
