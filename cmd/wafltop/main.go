// Command wafltop is a terminal viewer for a running waflbench's live
// introspection endpoints (-metrics-addr). It polls /debug/timeseries and
// /debug/picks and renders, per experiment arm: the per-CP allocation-quality
// deciles from the embedded time-series store, the pick-provenance reason mix
// (cache hit / refill / fallback rates), the CP-phase modeled-clock
// breakdown, and the watchdog counters.
//
// Usage:
//
//	wafltop [-addr host:port] [-interval 2s] [-count N] [-snapshot]
//
// -snapshot fetches once, prints one report, and exits — nonzero when the
// store holds no nonzero per-CP series yet (the CI smoke-test mode). Without
// it, wafltop clears the screen and refreshes every -interval until
// interrupted (or N refreshes with -count).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

type point struct {
	CPFirst uint64  `json:"cp_first"`
	CPLast  uint64  `json:"cp_last"`
	AtNS    int64   `json:"at_ns"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Sum     float64 `json:"sum"`
	Count   uint64  `json:"count"`
}

func (p point) avg() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

type tsDoc struct {
	Capacity int `json:"capacity"`
	Series   []struct {
		Name   string  `json:"name"`
		Points []point `json:"points"`
	} `json:"series"`
}

type picksDoc struct {
	Spaces []struct {
		Space    string            `json:"space"`
		Recorded uint64            `json:"recorded"`
		Dropped  uint64            `json:"dropped"`
		Reasons  map[string]uint64 `json:"reasons"`
	} `json:"spaces"`
}

func fetchJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// last returns the newest point of a series, if any.
func last(pts []point) (point, bool) {
	if len(pts) == 0 {
		return point{}, false
	}
	return pts[len(pts)-1], true
}

// report renders one refresh. It returns the number of series that carry at
// least one nonzero sample — the -snapshot liveness criterion.
func report(w *strings.Builder, ts tsDoc, pk picksDoc) int {
	bySeries := make(map[string][]point, len(ts.Series))
	nonzero := 0
	maxCP := uint64(0)
	for _, se := range ts.Series {
		bySeries[se.Name] = se.Points
		for _, p := range se.Points {
			if p.Sum != 0 {
				nonzero++
				break
			}
		}
		if p, ok := last(se.Points); ok && p.CPLast > maxCP {
			maxCP = p.CPLast
		}
	}

	// Arms are the prefixes of the canonical per-system clock series.
	var arms []string
	for name := range bySeries {
		if strings.HasSuffix(name, ".wafl.cps") {
			arms = append(arms, strings.TrimSuffix(name, ".wafl.cps"))
		}
	}
	sort.Strings(arms)

	fmt.Fprintf(w, "wafltop — %d series (cap %d/series), %d arms, newest CP %d\n\n",
		len(ts.Series), ts.Capacity, len(arms), maxCP)

	// CP-phase modeled-clock breakdown per arm.
	fmt.Fprintf(w, "%-28s %8s %12s %12s %10s %9s %9s\n",
		"arm", "cps", "cpu_ms", "dev_ms", "cp_pages", "wd_checks", "wd_viol")
	for _, arm := range arms {
		val := func(suffix string) float64 {
			p, ok := last(bySeries[arm+suffix])
			if !ok {
				return 0
			}
			return p.avg()
		}
		wdv := val(".watchdog.violations")
		mark := ""
		if wdv > 0 {
			mark = "  <-- VIOLATIONS"
		}
		fmt.Fprintf(w, "%-28s %8.0f %12.2f %12.2f %10.0f %9.0f %9.0f%s\n",
			arm,
			val(".wafl.cps"),
			val(".wafl.cpu_ns")/1e6,
			val(".cp.device_busy_ns")/1e6,
			val(".cp.metafile_pages_agg")+val(".cp.metafile_pages_vols"),
			val(".watchdog.checks"), wdv, mark)
	}

	// Allocation-quality deciles from the fragscan series.
	var fragSpaces []string
	for name := range bySeries {
		if strings.HasSuffix(name, ".frag.p50") {
			fragSpaces = append(fragSpaces, strings.TrimSuffix(name, ".frag.p50"))
		}
	}
	sort.Strings(fragSpaces)
	if len(fragSpaces) > 0 {
		fmt.Fprintf(w, "\n%-28s %8s %8s %8s %10s %12s\n",
			"space (AA free-frac)", "p10", "p50", "p90", "free_frac", "picked_free")
		for _, sp := range fragSpaces {
			val := func(suffix string) float64 {
				p, ok := last(bySeries[sp+suffix])
				if !ok {
					return 0
				}
				return p.avg()
			}
			fmt.Fprintf(w, "%-28s %8.3f %8.3f %8.3f %10.3f %12.3f\n",
				sp, val(".frag.p10"), val(".frag.p50"), val(".frag.p90"),
				val(".frag.free_frac"), val(".frag.picked_free_frac"))
		}
	}

	// Pick provenance: reason mix per space, busiest first.
	sort.Slice(pk.Spaces, func(i, j int) bool {
		if pk.Spaces[i].Recorded != pk.Spaces[j].Recorded {
			return pk.Spaces[i].Recorded > pk.Spaces[j].Recorded
		}
		return pk.Spaces[i].Space < pk.Spaces[j].Space
	})
	if len(pk.Spaces) > 0 {
		fmt.Fprintf(w, "\n%-28s %10s %9s %9s %9s %9s %9s\n",
			"picks by space", "recorded", "hit%", "shard%", "refill%", "fallback%", "dropped")
		shown := pk.Spaces
		if len(shown) > 12 {
			shown = shown[:12]
		}
		for _, sp := range shown {
			tot := float64(sp.Recorded)
			if tot == 0 {
				continue
			}
			pct := func(keys ...string) float64 {
				var n uint64
				for _, k := range keys {
					n += sp.Reasons[k]
				}
				return 100 * float64(n) / tot
			}
			fmt.Fprintf(w, "%-28s %10d %8.1f%% %8.1f%% %8.1f%% %8.1f%% %9d\n",
				sp.Space, sp.Recorded,
				pct("heap_top", "hbps_bin"), pct("shard_local"),
				pct("refill"), pct("bitmap_fallback"), sp.Dropped)
		}
		if len(pk.Spaces) > len(shown) {
			fmt.Fprintf(w, "  … and %d more spaces\n", len(pk.Spaces)-len(shown))
		}
	}
	return nonzero
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9190", "waflbench -metrics-addr to poll")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	count := flag.Int("count", 0, "number of refreshes before exiting (0 = until interrupted)")
	snapshot := flag.Bool("snapshot", false,
		"fetch once, print one report, and exit nonzero if no per-CP series carries data yet")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}

	for i := 0; ; i++ {
		var ts tsDoc
		var pk picksDoc
		if err := fetchJSON(client, base+"/debug/timeseries", &ts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := fetchJSON(client, base+"/debug/picks", &pk); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var b strings.Builder
		nonzero := report(&b, ts, pk)
		if *snapshot {
			fmt.Print(b.String())
			if nonzero == 0 {
				fmt.Fprintln(os.Stderr, "wafltop: no nonzero per-CP series yet")
				os.Exit(1)
			}
			return
		}
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		fmt.Print(b.String())
		fmt.Printf("\n[%s  refresh %v  ctrl-c to quit]\n", time.Now().Format("15:04:05"), *interval)
		if *count > 0 && i+1 >= *count {
			return
		}
		time.Sleep(*interval)
	}
}
