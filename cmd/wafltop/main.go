// Command wafltop is a terminal viewer for a running waflbench's live
// introspection endpoints (-metrics-addr). It polls /debug/timeseries,
// /debug/picks, /debug/slo, /debug/optrace, and /debug/control and renders,
// per experiment arm: the per-CP allocation-quality deciles from the
// embedded time-series store, the pick-provenance reason mix (cache hit /
// refill / fallback rates), the CP-phase modeled-clock breakdown with
// historical sparklines drawn from the series rings, the watchdog counters,
// the SLO portfolio (per-instance alert state, burn rates, budget used, and
// a slow-burn sparkline), the slowest sampled ops with their per-stage
// latency breakdown bars (base CPU / device / metafile / scan / cache), and
// the closed-loop controller (per-policy state machine, knob values with
// their actuation history sparkline, and the newest decision records with
// full provenance).
//
// Usage:
//
//	wafltop [-addr host:port] [-interval 2s] [-count N] [-snapshot] [-json]
//
// -snapshot fetches once, prints one report, and exits — nonzero when the
// store holds no nonzero per-CP series yet, when any SLO instance is in
// the page state, or when any controller policy is mid-flap (the CI
// smoke-test mode). -json fetches once and emits the raw endpoint documents
// as one combined JSON object
// {"timeseries":…,"picks":…,"slo":…,"optrace":…,"control":…} with the same
// exit semantics, for scripting. Without either, wafltop clears the screen
// and refreshes every -interval until interrupted (or N refreshes with
// -count). A bench built before the SLO engine, op tracer, or controller
// simply has no /debug/slo, /debug/optrace, or /debug/control endpoint;
// those panels (and JSON keys) are skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

type point struct {
	CPFirst uint64  `json:"cp_first"`
	CPLast  uint64  `json:"cp_last"`
	AtNS    int64   `json:"at_ns"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Sum     float64 `json:"sum"`
	Count   uint64  `json:"count"`
}

func (p point) avg() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

type tsDoc struct {
	Capacity int `json:"capacity"`
	Series   []struct {
		Name   string  `json:"name"`
		Points []point `json:"points"`
	} `json:"series"`
}

type sloDoc struct {
	Totals struct {
		Systems     int    `json:"systems"`
		Instances   int    `json:"instances"`
		Evaluations uint64 `json:"evaluations"`
		Transitions uint64 `json:"transitions"`
		Warns       uint64 `json:"warns"`
		Pages       uint64 `json:"pages"`
		ActiveWarns int    `json:"active_warns"`
		ActivePages int    `json:"active_pages"`
	} `json:"totals"`
	Systems []struct {
		System    string `json:"system"`
		Instances []struct {
			Name       string  `json:"name"`
			Kind       string  `json:"kind"`
			State      string  `json:"state"`
			BurnFast   float64 `json:"burn_fast"`
			BurnSlow   float64 `json:"burn_slow"`
			BudgetUsed float64 `json:"budget_used"`
		} `json:"instances"`
	} `json:"systems"`
}

type otSpan struct {
	Name     string   `json:"name"`
	DurNS    uint64   `json:"dur_ns"`
	Children []otSpan `json:"children,omitempty"`
}

type otDoc struct {
	Sampled     uint64 `json:"sampled"`
	SlowSampled uint64 `json:"slow_sampled"`
	Dropped     uint64 `json:"dropped"`
	Spaces      []struct {
		Space  string `json:"space"`
		Traces []struct {
			ID     uint64   `json:"id"`
			Space  string   `json:"space"`
			Kind   string   `json:"kind"`
			CP     uint64   `json:"cp"`
			LatNS  uint64   `json:"lat_ns"`
			Blocks uint64   `json:"blocks"`
			Slow   bool     `json:"slow"`
			Spans  []otSpan `json:"spans"`
		} `json:"traces"`
	} `json:"spaces"`
}

type ctlDoc struct {
	Totals struct {
		Systems     int    `json:"systems"`
		Instances   int    `json:"instances"`
		Evaluations uint64 `json:"evaluations"`
		Actuations  uint64 `json:"actuations"`
		Suppressed  uint64 `json:"suppressed"`
		Transitions uint64 `json:"transitions"`
		ActiveArmed int    `json:"active_armed"`
		ActiveActed int    `json:"active_acted"`
	} `json:"totals"`
	Systems []struct {
		System     string `json:"system"`
		Actuations uint64 `json:"actuations"`
		Suppressed uint64 `json:"suppressed"`
		Knobs      []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"knobs"`
		Instances []struct {
			Name     string  `json:"name"`
			Signal   string  `json:"signal"`
			State    string  `json:"state"`
			SinceCP  uint64  `json:"since_cp"`
			Value    float64 `json:"value"`
			Streak   int     `json:"streak"`
			Flapping bool    `json:"flapping"`
		} `json:"instances"`
		Records []struct {
			CP       uint64  `json:"cp"`
			Instance string  `json:"instance"`
			Signal   string  `json:"signal"`
			Value    float64 `json:"value"`
			Knob     string  `json:"knob"`
			Old      float64 `json:"old"`
			New      float64 `json:"new"`
			Fired    bool    `json:"fired"`
			Reason   string  `json:"reason"`
		} `json:"records"`
	} `json:"systems"`
}

type picksDoc struct {
	Spaces []struct {
		Space    string            `json:"space"`
		Recorded uint64            `json:"recorded"`
		Dropped  uint64            `json:"dropped"`
		Reasons  map[string]uint64 `json:"reasons"`
	} `json:"spaces"`
}

// fetchRaw returns an endpoint's body bytes, so one fetch can feed both the
// typed panels and the -json passthrough document.
func fetchRaw(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// last returns the newest point of a series, if any.
func last(pts []point) (point, bool) {
	if len(pts) == 0 {
		return point{}, false
	}
	return pts[len(pts)-1], true
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders the newest `width` per-point averages of a series ring as a
// unicode sparkline, scaled to the shown window's own min..max. Flat series
// render as a low bar; an empty series renders empty.
func spark(pts []point, width int) string {
	if len(pts) == 0 {
		return ""
	}
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.avg()
		lo = math.Min(lo, vals[i])
		hi = math.Max(hi, vals[i])
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// report renders one refresh. It returns the number of series that carry at
// least one nonzero sample (the -snapshot liveness criterion), the number
// of SLO instances currently in the page state, and the number of
// controller policies mid-flap (the -snapshot health criteria).
func report(w *strings.Builder, ts tsDoc, pk picksDoc, sl sloDoc, haveSLO bool, ot otDoc, haveOT bool, ct ctlDoc, haveCTL bool) (nonzero, paging, flapping int) {
	bySeries := make(map[string][]point, len(ts.Series))
	maxCP := uint64(0)
	for _, se := range ts.Series {
		bySeries[se.Name] = se.Points
		for _, p := range se.Points {
			if p.Sum != 0 {
				nonzero++
				break
			}
		}
		if p, ok := last(se.Points); ok && p.CPLast > maxCP {
			maxCP = p.CPLast
		}
	}

	// Arms are the prefixes of the canonical per-system clock series.
	var arms []string
	for name := range bySeries {
		if strings.HasSuffix(name, ".wafl.cps") {
			arms = append(arms, strings.TrimSuffix(name, ".wafl.cps"))
		}
	}
	sort.Strings(arms)

	fmt.Fprintf(w, "wafltop — %d series (cap %d/series), %d arms, newest CP %d\n\n",
		len(ts.Series), ts.Capacity, len(arms), maxCP)

	// CP-phase modeled-clock breakdown per arm, with the CPU-clock history
	// sparkline drawn straight from the series ring.
	fmt.Fprintf(w, "%-28s %8s %12s %12s %10s %9s %9s  %s\n",
		"arm", "cps", "cpu_ms", "dev_ms", "cp_pages", "wd_checks", "wd_viol", "cpu trend")
	for _, arm := range arms {
		val := func(suffix string) float64 {
			p, ok := last(bySeries[arm+suffix])
			if !ok {
				return 0
			}
			return p.avg()
		}
		wdv := val(".watchdog.violations")
		mark := ""
		if wdv > 0 {
			mark = "  <-- VIOLATIONS"
		}
		fmt.Fprintf(w, "%-28s %8.0f %12.2f %12.2f %10.0f %9.0f %9.0f  %s%s\n",
			arm,
			val(".wafl.cps"),
			val(".wafl.cpu_ns")/1e6,
			val(".cp.device_busy_ns")/1e6,
			val(".cp.metafile_pages_agg")+val(".cp.metafile_pages_vols"),
			val(".watchdog.checks"), wdv,
			spark(bySeries[arm+".wafl.cpu_ns"], 16), mark)
	}

	// Allocation-quality deciles from the fragscan series.
	var fragSpaces []string
	for name := range bySeries {
		if strings.HasSuffix(name, ".frag.p50") {
			fragSpaces = append(fragSpaces, strings.TrimSuffix(name, ".frag.p50"))
		}
	}
	sort.Strings(fragSpaces)
	if len(fragSpaces) > 0 {
		fmt.Fprintf(w, "\n%-28s %8s %8s %8s %10s %12s  %s\n",
			"space (AA free-frac)", "p10", "p50", "p90", "free_frac", "picked_free", "p50 trend")
		for _, sp := range fragSpaces {
			val := func(suffix string) float64 {
				p, ok := last(bySeries[sp+suffix])
				if !ok {
					return 0
				}
				return p.avg()
			}
			fmt.Fprintf(w, "%-28s %8.3f %8.3f %8.3f %10.3f %12.3f  %s\n",
				sp, val(".frag.p10"), val(".frag.p50"), val(".frag.p90"),
				val(".frag.free_frac"), val(".frag.picked_free_frac"),
				spark(bySeries[sp+".frag.p50"], 16))
		}
	}

	// Pick provenance: reason mix per space, busiest first.
	sort.Slice(pk.Spaces, func(i, j int) bool {
		if pk.Spaces[i].Recorded != pk.Spaces[j].Recorded {
			return pk.Spaces[i].Recorded > pk.Spaces[j].Recorded
		}
		return pk.Spaces[i].Space < pk.Spaces[j].Space
	})
	if len(pk.Spaces) > 0 {
		fmt.Fprintf(w, "\n%-28s %10s %9s %9s %9s %9s %9s\n",
			"picks by space", "recorded", "hit%", "shard%", "refill%", "fallback%", "dropped")
		shown := pk.Spaces
		if len(shown) > 12 {
			shown = shown[:12]
		}
		for _, sp := range shown {
			tot := float64(sp.Recorded)
			if tot == 0 {
				continue
			}
			pct := func(keys ...string) float64 {
				var n uint64
				for _, k := range keys {
					n += sp.Reasons[k]
				}
				return 100 * float64(n) / tot
			}
			fmt.Fprintf(w, "%-28s %10d %8.1f%% %8.1f%% %8.1f%% %8.1f%% %9d\n",
				sp.Space, sp.Recorded,
				pct("heap_top", "hbps_bin"), pct("shard_local"),
				pct("refill"), pct("bitmap_fallback"), sp.Dropped)
		}
		if len(pk.Spaces) > len(shown) {
			fmt.Fprintf(w, "  … and %d more spaces\n", len(pk.Spaces)-len(shown))
		}
	}

	// SLO portfolio: alert totals, then per-instance state with the
	// slow-window burn-rate history (the engine writes its evaluation
	// stream back into the same tsdb, so the sparkline comes for free).
	if haveSLO && sl.Totals.Instances > 0 {
		t := sl.Totals
		fmt.Fprintf(w, "\nSLO portfolio — %d instances / %d systems, %d evaluations, %d warns, %d pages (active: %d warn, %d page)\n",
			t.Instances, t.Systems, t.Evaluations, t.Warns, t.Pages, t.ActiveWarns, t.ActivePages)
		type row struct {
			sys  string
			name string
			kind string
			st   string
			bf   float64
			bs   float64
			bu   float64
		}
		var rows []row
		for _, sys := range sl.Systems {
			for _, in := range sys.Instances {
				if in.State == "page" {
					paging++
				}
				rows = append(rows, row{sys.System, in.Name, in.Kind, in.State, in.BurnFast, in.BurnSlow, in.BudgetUsed})
			}
		}
		rank := func(st string) int {
			switch st {
			case "page":
				return 0
			case "warn":
				return 1
			}
			return 2
		}
		sort.Slice(rows, func(i, j int) bool {
			if a, b := rank(rows[i].st), rank(rows[j].st); a != b {
				return a < b
			}
			if rows[i].sys != rows[j].sys {
				return rows[i].sys < rows[j].sys
			}
			return rows[i].name < rows[j].name
		})
		fmt.Fprintf(w, "%-42s %-9s %-6s %9s %9s %8s  %s\n",
			"system/instance", "kind", "state", "burn_fast", "burn_slow", "budget", "slow-burn trend")
		shown := rows
		if len(shown) > 14 {
			shown = shown[:14]
		}
		for _, r := range shown {
			mark := ""
			if r.st == "page" {
				mark = "  <-- PAGING"
			}
			fmt.Fprintf(w, "%-42s %-9s %-6s %9.2f %9.2f %8.3f  %s%s\n",
				r.sys+"/"+r.name, r.kind, r.st, r.bf, r.bs, r.bu,
				spark(bySeries[r.sys+".slo."+r.name+".burn_slow"], 16), mark)
		}
		if len(rows) > len(shown) {
			fmt.Fprintf(w, "  … and %d more instances (all %s)\n", len(rows)-len(shown), shown[len(shown)-1].st)
		}
	}

	// Slowest sampled ops: every surviving trace ranked by modeled latency,
	// with a per-stage breakdown bar built from the top-level span durations
	// (the spans sum exactly to lat_ns, so the bar is the whole story).
	if haveOT && ot.Sampled > 0 {
		type otRow struct {
			id            uint64
			space, kind   string
			cp, lat, blks uint64
			slow          bool
			stages        map[string]uint64
		}
		var rows []otRow
		for _, sp := range ot.Spaces {
			for _, t := range sp.Traces {
				st := make(map[string]uint64, len(t.Spans))
				for _, s := range t.Spans {
					st[s.Name] += s.DurNS
				}
				rows = append(rows, otRow{t.ID, t.Space, t.Kind, t.CP, t.LatNS, t.Blocks, t.Slow, st})
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].lat != rows[j].lat {
				return rows[i].lat > rows[j].lat
			}
			return rows[i].id < rows[j].id
		})
		fmt.Fprintf(w, "\nslowest sampled ops — %d sampled (%d slow-gated, %d evicted)   [b=base_cpu d=device m=metafile s=scan c=cache]\n",
			ot.Sampled, ot.SlowSampled, ot.Dropped)
		fmt.Fprintf(w, "%-18s %-28s %-5s %6s %9s %7s  %s\n",
			"trace", "volume", "kind", "cp", "lat_ms", "blocks", "stage breakdown")
		shown := rows
		if len(shown) > 8 {
			shown = shown[:8]
		}
		for _, r := range shown {
			mark := ""
			if r.slow {
				mark = "  <-- SLOW"
			}
			fmt.Fprintf(w, "0x%016x %-28s %-5s %6d %9.2f %7d  |%s|%s\n",
				r.id, r.space, r.kind, r.cp, float64(r.lat)/1e6, r.blks,
				stageBar(r.stages, r.lat, 24), mark)
		}
		if len(rows) > len(shown) {
			fmt.Fprintf(w, "  … and %d more sampled ops in the rings\n", len(rows)-len(shown))
		}
	}

	// Closed-loop controller: per-policy state machine, knob values with the
	// knob-history sparkline (the engine writes knob values back into the
	// tsdb every evaluation, so the trend comes from the same rings), and the
	// newest decision records with full provenance.
	if haveCTL && ct.Totals.Instances > 0 {
		t := ct.Totals
		fmt.Fprintf(w, "\ncontrol plane — %d policies / %d systems, %d evaluations, %d actuations, %d suppressed (active: %d armed, %d acted)\n",
			t.Instances, t.Systems, t.Evaluations, t.Actuations, t.Suppressed, t.ActiveArmed, t.ActiveActed)
		type crow struct {
			sys, name, signal, st string
			streak                int
			val                   float64
			flap                  bool
		}
		var rows []crow
		for _, sys := range ct.Systems {
			for _, in := range sys.Instances {
				if in.Flapping {
					flapping++
				}
				rows = append(rows, crow{sys.System, in.Name, in.Signal, in.State, in.Streak, in.Value, in.Flapping})
			}
		}
		rank := func(st string) int {
			switch st {
			case "acted":
				return 0
			case "armed":
				return 1
			}
			return 2
		}
		sort.Slice(rows, func(i, j int) bool {
			if a, b := rank(rows[i].st), rank(rows[j].st); a != b {
				return a < b
			}
			if rows[i].sys != rows[j].sys {
				return rows[i].sys < rows[j].sys
			}
			return rows[i].name < rows[j].name
		})
		fmt.Fprintf(w, "%-42s %-34s %-6s %6s %10s\n",
			"system/policy", "signal", "state", "streak", "value")
		shown := rows
		if len(shown) > 14 {
			shown = shown[:14]
		}
		for _, r := range shown {
			mark := ""
			if r.flap {
				mark = "  <-- FLAPPING"
			}
			fmt.Fprintf(w, "%-42s %-34s %-6s %6d %10.2f%s\n",
				r.sys+"/"+r.name, r.signal, r.st, r.streak, r.val, mark)
		}
		if len(rows) > len(shown) {
			fmt.Fprintf(w, "  … and %d more policies (all %s)\n", len(rows)-len(shown), shown[len(shown)-1].st)
		}

		// Knob values per system, with the actuation-history sparkline drawn
		// from the engine's "<sys>.control.knob.<name>" series.
		fmt.Fprintf(w, "%-42s %12s  %s\n", "system/knob", "value", "knob trend")
		knobRows := 0
	knobLoop:
		for _, sys := range ct.Systems {
			for _, k := range sys.Knobs {
				if knobRows >= 10 {
					fmt.Fprintln(w, "  … more knobs not shown")
					break knobLoop
				}
				fmt.Fprintf(w, "%-42s %12.0f  %s\n",
					sys.System+"/"+k.Name, k.Value,
					spark(bySeries[sys.System+".control.knob."+k.Name], 16))
				knobRows++
			}
		}

		// Newest decision records across systems, fired decisions and
		// suppressions alike — the full provenance chain in one line each.
		type rrow struct {
			sys  string
			rec  int // index into the system's record slice
			cp   uint64
			line string
		}
		var recs []rrow
		for _, sys := range ct.Systems {
			for i, r := range sys.Records {
				verdict := fmt.Sprintf("%s %.0f -> %.0f", r.Knob, r.Old, r.New)
				if !r.Fired {
					verdict = "suppressed:" + r.Reason
				}
				recs = append(recs, rrow{sys.System, i, r.CP,
					fmt.Sprintf("  cp %-6d %-28s %-14s %s = %.3f — %s",
						r.CP, sys.System, r.Instance, r.Signal, r.Value, verdict)})
			}
		}
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].cp != recs[j].cp {
				return recs[i].cp > recs[j].cp
			}
			if recs[i].sys != recs[j].sys {
				return recs[i].sys < recs[j].sys
			}
			return recs[i].rec > recs[j].rec
		})
		if len(recs) > 0 {
			fmt.Fprintln(w, "newest decisions:")
			shown := recs
			if len(shown) > 6 {
				shown = shown[:6]
			}
			for _, r := range shown {
				fmt.Fprintln(w, r.line)
			}
			if len(recs) > len(shown) {
				fmt.Fprintf(w, "  … and %d more records in the rings\n", len(recs)-len(shown))
			}
		}
	}
	return nonzero, paging, flapping
}

// stageBar renders a width-character bar whose segments are the attribution
// stages' shares of the op latency, each drawn with the stage's letter.
func stageBar(stages map[string]uint64, lat uint64, width int) string {
	if lat == 0 {
		return strings.Repeat(" ", width)
	}
	order := []struct {
		name string
		ch   byte
	}{{"base_cpu", 'b'}, {"device", 'd'}, {"metafile", 'm'}, {"scan", 's'}, {"cache", 'c'}}
	b := make([]byte, 0, width)
	for _, s := range order {
		n := int(float64(stages[s.name])/float64(lat)*float64(width) + 0.5)
		for i := 0; i < n && len(b) < width; i++ {
			b = append(b, s.ch)
		}
	}
	for len(b) < width {
		b = append(b, ' ')
	}
	return string(b)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9190", "waflbench -metrics-addr to poll")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	count := flag.Int("count", 0, "number of refreshes before exiting (0 = until interrupted)")
	snapshot := flag.Bool("snapshot", false,
		"fetch once, print one report, and exit nonzero if no per-CP series carries data yet, any SLO instance is paging, or any controller policy is flapping")
	jsonOut := flag.Bool("json", false,
		"fetch once, emit the raw endpoint documents as one combined JSON object on stdout, and exit with -snapshot's status semantics")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}

	for i := 0; ; i++ {
		var ts tsDoc
		var pk picksDoc
		var sl sloDoc
		var ot otDoc
		tsRaw, err := fetchRaw(client, base+"/debug/timeseries")
		if err == nil {
			err = json.Unmarshal(tsRaw, &ts)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pkRaw, err := fetchRaw(client, base+"/debug/picks")
		if err == nil {
			err = json.Unmarshal(pkRaw, &pk)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Benches built before the SLO engine, op tracer, or controller
		// have no /debug/slo, /debug/optrace, or /debug/control; skip
		// those panels rather than failing the whole viewer.
		slRaw, slErr := fetchRaw(client, base+"/debug/slo")
		haveSLO := slErr == nil && json.Unmarshal(slRaw, &sl) == nil
		otRaw, otErr := fetchRaw(client, base+"/debug/optrace")
		haveOT := otErr == nil && json.Unmarshal(otRaw, &ot) == nil
		var ct ctlDoc
		ctRaw, ctErr := fetchRaw(client, base+"/debug/control")
		haveCTL := ctErr == nil && json.Unmarshal(ctRaw, &ct) == nil
		var b strings.Builder
		nonzero, paging, flapping := report(&b, ts, pk, sl, haveSLO, ot, haveOT, ct, haveCTL)
		if *snapshot || *jsonOut {
			if *jsonOut {
				doc := map[string]json.RawMessage{
					"timeseries": tsRaw,
					"picks":      pkRaw,
				}
				if haveSLO {
					doc["slo"] = slRaw
				}
				if haveOT {
					doc["optrace"] = otRaw
				}
				if haveCTL {
					doc["control"] = ctRaw
				}
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(doc); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			} else {
				fmt.Print(b.String())
			}
			if nonzero == 0 {
				fmt.Fprintln(os.Stderr, "wafltop: no nonzero per-CP series yet")
				os.Exit(1)
			}
			if paging > 0 {
				fmt.Fprintf(os.Stderr, "wafltop: %d SLO instance(s) in page state\n", paging)
				os.Exit(1)
			}
			if flapping > 0 {
				fmt.Fprintf(os.Stderr, "wafltop: %d controller polic(ies) mid-flap\n", flapping)
				os.Exit(1)
			}
			return
		}
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		fmt.Print(b.String())
		fmt.Printf("\n[%s  refresh %v  ctrl-c to quit]\n", time.Now().Format("15:04:05"), *interval)
		if *count > 0 && i+1 >= *count {
			return
		}
		time.Sleep(*interval)
	}
}
