package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// The control panel must render the policy state machine, the knob values,
// and the decision records, and the returned flapping count — the
// -snapshot exit-1 criterion — must count exactly the mid-flap instances.
func TestReportControlPanelAndFlapping(t *testing.T) {
	var ts tsDoc
	if err := json.Unmarshal([]byte(`{"capacity":8,"series":[
		{"name":"arm.wafl.cps","points":[{"cp_first":1,"cp_last":1,"sum":1,"count":1}]},
		{"name":"arm.control.knob.delayed_budget","points":[{"cp_first":1,"cp_last":1,"sum":1024,"count":1}]}
	]}`), &ts); err != nil {
		t.Fatal(err)
	}
	var ct ctlDoc
	if err := json.Unmarshal([]byte(`{
		"totals":{"systems":1,"instances":2,"evaluations":10,"actuations":3,"suppressed":1,"active_armed":1,"active_acted":1},
		"systems":[{"system":"arm","actuations":3,"suppressed":1,
			"knobs":[{"name":"delayed_budget","value":1024}],
			"instances":[
				{"name":"shed.v0","signal":"arm.vol.v0.delayed.pending","state":"acted","value":9000,"streak":4,"flapping":true},
				{"name":"shed.v1","signal":"arm.vol.v1.delayed.pending","state":"ok","value":10,"streak":0,"flapping":false}],
			"records":[{"cp":7,"instance":"shed.v0","signal":"arm.vol.v0.delayed.pending","value":9000,
				"knob":"delayed_budget","old":2048,"new":1024,"fired":true}]}]}`), &ct); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	nonzero, paging, flapping := report(&b, ts, picksDoc{}, sloDoc{}, false, otDoc{}, false, ct, true)
	if nonzero == 0 {
		t.Fatal("nonzero series not counted")
	}
	if paging != 0 {
		t.Fatalf("paging = %d with no SLO doc", paging)
	}
	if flapping != 1 {
		t.Fatalf("flapping = %d, want 1", flapping)
	}
	out := b.String()
	for _, want := range []string{
		"control plane — 2 policies / 1 systems",
		"arm/shed.v0", "<-- FLAPPING",
		"arm/delayed_budget", "1024",
		"newest decisions:", "delayed_budget 2048 -> 1024",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Without the endpoint the panel and the flap criterion both disappear.
	var b2 strings.Builder
	if _, _, f := report(&b2, ts, picksDoc{}, sloDoc{}, false, otDoc{}, false, ctlDoc{}, false); f != 0 {
		t.Fatalf("flapping = %d without control doc", f)
	}
	if strings.Contains(b2.String(), "control plane") {
		t.Fatal("control panel rendered without the endpoint")
	}
}
