// Command waflbench regenerates the paper's evaluation figures.
//
// Each experiment builds the configuration the paper describes, ages it
// with the stated workload, measures per-operation service demands in the
// simulator, and prints the same rows/series the figure reports.
//
// Usage:
//
//	waflbench [-exp fig6|fig7|fig8|fig9|fig10|all] [-scale 1.0] [-seed 42]
//
// Absolute numbers are simulation-scale; the comparisons (who wins, by what
// factor, where curves sit) are what reproduce the paper. See EXPERIMENTS.md
// for paper-versus-measured tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"waflfs/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig6..fig10 or all")
	scale := flag.Float64("scale", 1.0, "working-set scale factor (smaller = faster)")
	seed := flag.Int64("seed", 42, "random seed")
	cores := flag.Int("cores", 20, "storage-server CPU cores for the queueing model")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Bool("parallel", false, "with -exp all, run the experiments concurrently")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Cores = *cores

	run := func(e experiments.Experiment) {
		fmt.Printf("### %s — %s (scale %.2f)\n\n", e.Name, e.Description, cfg.Scale)
		start := time.Now()
		e.Run(cfg, os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		if *parallel {
			runAllParallel(cfg)
			return
		}
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.Lookup(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
}

// runAllParallel executes every experiment concurrently (they share nothing)
// and prints each one's buffered output in order as it completes.
func runAllParallel(cfg experiments.Config) {
	all := experiments.All()
	outs := make([]chan string, len(all))
	for i, e := range all {
		outs[i] = make(chan string, 1)
		go func(e experiments.Experiment, out chan<- string) {
			var buf strings.Builder
			start := time.Now()
			fmt.Fprintf(&buf, "### %s — %s (scale %.2f)\n\n", e.Name, e.Description, cfg.Scale)
			e.Run(cfg, &buf)
			fmt.Fprintf(&buf, "[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
			out <- buf.String()
		}(e, outs[i])
	}
	for _, out := range outs {
		fmt.Print(<-out)
	}
}
