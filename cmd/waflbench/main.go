// Command waflbench regenerates the paper's evaluation figures.
//
// Each experiment builds the configuration the paper describes, ages it
// with the stated workload, measures per-operation service demands in the
// simulator, and prints the same rows/series the figure reports.
//
// Usage:
//
//	waflbench [-exp fig6|fig7|fig8|fig9|fig10|all] [-scale 1.0] [-seed 42]
//	          [-parallel N] [-cpuprofile f] [-memprofile f]
//	          [-metrics-addr host:port] [-csv-out f.csv] [-trace-out f.jsonl]
//	          [-trace-collapse f.folded] [-bench-json BENCH_n.json]
//	          [-faults matrix|pipeline|<plan-spec>] [-pickbench] [-pipeline]
//	          [-slo default|<spec>] [-slo-expect none|alerts]
//	          [-optrace default|rate=N[,slow=D][,cap=N]]
//	          [-control default|<spec>] [-control-expect none|actuations]
//
// -faults runs the crash-recovery harness instead of a figure: "matrix"
// sweeps a crash at every CP phase × media fault kind and exits nonzero if
// any recovered cache silently disagrees with the bitmap metafiles;
// "pipeline" sweeps the pipelined-CP overlap window (overlap_alloc /
// overlap_flush) × every fault kind the same way; any other value is a
// fault-plan spec (e.g. "phase=flush,fault=torn,cp=2") running a single
// crash-and-recover scenario — plans naming an overlap phase run the
// pipelined scenario, whose overlap window is boundary 4 (cp=4). See
// internal/faultinject.
//
// -bench-json runs the canonical fig6–fig10 + microbench suite and writes a
// schema-versioned benchmark artifact (headline metrics, fragscan
// allocation-quality summaries, modeled clocks, provenance) for regression
// gating with cmd/benchdiff; see internal/benchfmt.
//
// -parallel sets the deterministic work-pool width: experiment arms, MVA
// sweep points, CP flushes, and mount walks fan out across N workers, with
// bit-identical results at any N (0 selects min(GOMAXPROCS, 8)).
//
// The observability flags wire every experiment arm into shared sinks:
// -metrics-addr serves live introspection endpoints for the duration of the
// run (":0" picks a free port; the bench self-checks /metrics before
// exiting): /metrics is the Prometheus text view of every arm's last
// published CP snapshot, /debug/timeseries dumps the embedded per-CP
// time-series store as JSON, /debug/picks dumps the allocation-decision
// provenance rings, and /debug/pprof/* is the standard Go profiler. The
// online invariant watchdogs are armed whenever the endpoints are up.
// -hold keeps the endpoints serving after the run finishes (for cmd/wafltop
// or a browser), -csv-out appends one row per metric per consistency point
// per arm, -trace-out writes the canonical CP-phase / allocator event
// sequence as JSON Lines, and -trace-collapse folds the same timed spans
// into collapsed-stack format (one "sys;phase;name <count>" line per unique
// stack, flamegraph.pl-compatible).
//
// -slo arms the per-volume SLO engine on every arm: the spec string
// ("default" for the stock portfolio, or clauses like
// "name=lat,kind=latency,space=vol.*,target=0.99,threshold=20ms,
// page=10@30s/5m,warn=2@2m30s/20m") is evaluated at each CP boundary
// against the embedded time-series store over modeled-clock windows, and
// the final alert totals print after the run. With -metrics-addr the
// /debug/slo endpoint serves the live status document. -slo-expect turns
// the outcome into an exit code: "none" fails the run if any warn or page
// fired (clean-figure smoke), "alerts" fails unless at least one page
// fired (crash-matrix smoke). See internal/obs/slo.
//
// -optrace arms request-scoped op tracing on every arm: 1-in-rate sampled
// reads and writes (plus every op slower than the slow gate) record a span
// tree on the modeled clock — allocator pick provenance, per-stage CP cost
// attribution, device-busy leaves — into bounded per-volume rings. With
// -metrics-addr the /debug/optrace endpoint serves the trace document
// (filterable by ?vol=, ?min_lat=, ?id=, ?limit=); with -trace-collapse the
// sampled ops' critical paths fold into the same collapsed-stack output as
// the CP-phase spans. The spec is comma-separated key=value ("default" for
// rate=16,slow=20ms,cap=256); trace IDs are derived from -seed, so the
// sampled set and every ID are identical at any -parallel width. See
// internal/obs/optrace.
//
// -control arms the closed-loop controller on every arm: the policy string
// ("default" for the stock portfolio, or clauses like
// "name=shed,signal=slo.latency.vol.*.state,op=>,value=0.5,hold=2,
// action=delayed_budget,step=-50%,min=256") is evaluated once per CP
// boundary on the modeled clock, reading its signals from the embedded
// time-series store and actuating bounded tunables (delayed-free budget,
// alloc batch, fragscan stride, scrub kicks) through the system's actuator.
// Every decision — fired, clamped, rejected, or suppressed — lands in a
// bounded provenance ring with the signal value, canonical policy clause,
// old/new knob values, and the worst-op exemplar trace ID when -optrace is
// armed. The stock portfolio's signals are the SLO engine's state series,
// so -control arms the default SLO portfolio when -slo is absent. Final
// decision totals print after the run; with -metrics-addr the
// /debug/control endpoint serves the live status document. -control-expect
// turns the outcome into an exit code: "none" fails the run if anything
// actuated (clean-figure smoke), "actuations" fails unless at least one
// actuation fired (crash-matrix smoke). With -bench-json, -control gates
// the control.* families — the do-no-harm/does-act audit and the
// adversarial snapshot-storm benchmark — into the artifact. See
// internal/control.
//
// -pickbench runs the striped-vs-shared allocator pick-path microbenchmark
// (see internal/experiments.RunAllocBench) and exits nonzero if the striped
// arm's modeled pick wall-clock at 8 workers is not strictly faster than the
// shared arm's — a cheap CI guard that the sharded hot path keeps paying for
// itself.
//
// -pipeline runs the pipelined-CP overlap benchmark (see
// internal/experiments.RunPipelineBench): the same sustained-write workload
// stop-the-world and pipelined, exiting nonzero if the modeled overlap gain
// at 8 workers is below 1.3x or the two arms' final states diverge. With
// -bench-json it instead gates the pipelined families (cp.pipeline.* and
// the crash.pipeline.* overlap crash matrix) into the collected artifact.
//
// Absolute numbers are simulation-scale; the comparisons (who wins, by what
// factor, where curves sit) are what reproduce the paper. See EXPERIMENTS.md
// for paper-versus-measured tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	hpprof "net/http/pprof"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"waflfs/internal/benchfmt"
	"waflfs/internal/control"
	"waflfs/internal/experiments"
	"waflfs/internal/faultinject"
	"waflfs/internal/obs"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/obs/picks"
	"waflfs/internal/obs/slo"
	"waflfs/internal/obs/tsdb"
	"waflfs/internal/stats"
)

// gitRev returns the short HEAD revision for artifact provenance, or
// "unknown" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig6..fig10 or all")
	scale := flag.Float64("scale", 1.0, "working-set scale factor (smaller = faster)")
	seed := flag.Int64("seed", 42, "random seed")
	cores := flag.Int("cores", 20, "storage-server CPU cores for the queueing model")
	list := flag.Bool("list", false, "list experiments and exit")
	workers := flag.Int("parallel", 1,
		"work-pool width for experiments, CP flushes, and mount walks (0 = min(GOMAXPROCS,8), 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "",
		"serve live endpoints (/metrics, /debug/timeseries, /debug/picks, /debug/pprof) on this address during the run (\":0\" picks a free port)")
	hold := flag.Duration("hold", 0,
		"keep the live endpoints serving for this long after the run finishes (requires -metrics-addr)")
	csvOut := flag.String("csv-out", "", "write per-CP metric rows to this CSV file")
	traceOut := flag.String("trace-out", "", "write the CP-phase/allocator trace to this JSON Lines file")
	traceCollapse := flag.String("trace-collapse", "",
		"fold the CP-phase trace spans into collapsed-stack format (sys;phase;name count) and write them to this file (flamegraph.pl-compatible)")
	pickbench := flag.Bool("pickbench", false,
		"run the striped-vs-shared allocator pick-path microbenchmark and exit 1 if the striped arm is not faster at 8 workers (modeled); overrides -exp")
	pipeline := flag.Bool("pipeline", false,
		"run the pipelined-CP overlap benchmark and exit 1 if the overlap gain at 8 workers is below 1.3x or the arms' final states diverge (overrides -exp); with -bench-json, gates the cp.pipeline.* and crash.pipeline.* families into the artifact")
	benchJSON := flag.String("bench-json", "",
		"run the canonical fig6-fig10 + microbench suite and write a schema-versioned benchmark artifact (BENCH_<n>.json) to this file; overrides -exp")
	faults := flag.String("faults", "",
		"fault-injection mode: 'matrix' sweeps a crash at every CP phase × media fault and exits 1 on silent divergence; any other value is a plan spec like 'phase=flush,fault=torn,cp=2' running one crash-and-recover scenario; overrides -exp")
	sloSpec := flag.String("slo", "",
		"arm the SLO engine on every arm with this spec string ('default' for the stock portfolio; see internal/obs/slo)")
	sloExpect := flag.String("slo-expect", "",
		"exit 1 unless the run's SLO alert totals match: 'none' (no warns or pages) or 'alerts' (at least one page); requires -slo")
	optraceSpec := flag.String("optrace", "",
		"arm request-scoped op tracing on every arm with this spec ('default' or 'rate=N[,slow=D][,cap=N]'; see internal/obs/optrace)")
	controlSpec := flag.String("control", "",
		"arm the closed-loop controller on every arm with this policy string ('default' for the stock portfolio; see internal/control)")
	controlExpect := flag.String("control-expect", "",
		"exit 1 unless the run's actuation totals match: 'none' (nothing actuated) or 'actuations' (at least one fired); requires -control")
	flag.Parse()

	switch *sloExpect {
	case "", "none", "alerts":
	default:
		fmt.Fprintf(os.Stderr, "-slo-expect %q: want 'none' or 'alerts'\n", *sloExpect)
		os.Exit(2)
	}
	if *sloExpect != "" && *sloSpec == "" {
		fmt.Fprintln(os.Stderr, "-slo-expect requires -slo")
		os.Exit(2)
	}
	switch *controlExpect {
	case "", "none", "actuations":
	default:
		fmt.Fprintf(os.Stderr, "-control-expect %q: want 'none' or 'actuations'\n", *controlExpect)
		os.Exit(2)
	}
	if *controlExpect != "" && *controlSpec == "" {
		fmt.Fprintln(os.Stderr, "-control-expect requires -control")
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC() // profile live allocations, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Cores = *cores
	cfg.Workers = *workers
	cfg.Pipeline = *pipeline
	cfg.Control = *controlSpec != ""

	// Observability sinks. One export registry / tracer / CSV stream is
	// shared by every experiment arm; each arm registers its metrics under
	// its own name prefix so the streams stay disjoint.
	var (
		export  *obs.Registry
		tracer  *obs.Tracer
		csvFile *os.File
		csvRec  *obs.CSVRecorder
		live    *obs.Latest
		tsStore *tsdb.Store
		pickRec *picks.Recorder
		sloSet  *slo.Set
		otRec   *optrace.Recorder
		ctlSet  *control.Set
	)
	if *metricsAddr != "" || *csvOut != "" || *traceOut != "" || *traceCollapse != "" || *sloSpec != "" || *optraceSpec != "" || *controlSpec != "" {
		export = obs.NewRegistry()
		sink := &experiments.ObsSink{Export: export}
		if *metricsAddr != "" || *sloSpec != "" || *controlSpec != "" {
			// The SLO engine reads its SLI windows out of the time-series
			// store, so -slo arms the tsdb even without live serving — and the
			// controller reads its signals the same way; the latency SLIs
			// additionally need the cumulative histogram-bucket series.
			tsCfg := tsdb.DefaultConfig()
			if *sloSpec != "" || *controlSpec != "" {
				tsCfg.HistBuckets = tsdb.SuffixFilter(".lat_ns")
			}
			tsStore = tsdb.NewStore(tsCfg)
			sink.TSDB = tsStore
		}
		if *metricsAddr != "" {
			// Live serving: arms publish their registry snapshots at CP
			// boundaries (tear-free under concurrent scrapes), the tsdb and
			// pick rings are mutex-guarded, and the invariant watchdogs run
			// whenever someone is watching.
			live = obs.NewLatest()
			pickRec = picks.NewRecorder(picks.DefaultConfig())
			sink.Live = live
			sink.Picks = pickRec
			sink.Watchdogs = true
		}
		if *sloSpec != "" {
			specs, err := slo.ParseSpecs(*sloSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-slo: %v\n", err)
				os.Exit(2)
			}
			sloSet = slo.NewSet(specs)
			sink.SLO = sloSet
		}
		if *controlSpec != "" {
			pols, err := control.ParsePolicies(*controlSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-control: %v\n", err)
				os.Exit(2)
			}
			ctlSet = control.NewSet(pols)
			sink.Control = ctlSet
			if sink.SLO == nil {
				// The stock portfolio watches the SLO engine's state series,
				// so a controller without -slo would see no signals at all:
				// arm the default SLO portfolio alongside it.
				sloSet = slo.NewSet(slo.DefaultSpecs())
				sink.SLO = sloSet
			}
		}
		if *optraceSpec != "" {
			otCfg, err := optrace.ParseConfig(*optraceSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-optrace: %v\n", err)
				os.Exit(2)
			}
			otCfg.Seed = *seed
			otRec = optrace.NewRecorder(otCfg)
			sink.OpTrace = otRec
		}
		if *traceOut != "" || *traceCollapse != "" {
			tracer = obs.NewTracer()
			sink.Tracer = tracer
		}
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			csvFile = f
			csvRec = obs.NewCSVRecorder(f)
			sink.CSV = csvRec
		}
		cfg.Obs = sink
	}

	var metricsURL string
	var srv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		// Before the first CP publishes, serve a placeholder rather than
		// reading the export registry's closures while arms mutate them.
		liveHandler := obs.LatestHandler(live)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			if live.NumSystems() == 0 {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprintln(w, "# no consistency points published yet")
				return
			}
			liveHandler.ServeHTTP(w, r)
		})
		mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = tsStore.WriteJSON(w)
		})
		mux.HandleFunc("/debug/picks", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = pickRec.WriteJSON(w)
		})
		mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = sloSet.WriteJSON(w) // nil-safe: empty document without -slo
		})
		mux.HandleFunc("/debug/control", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = ctlSet.WriteJSON(w) // nil-safe: empty document without -control
		})
		mux.HandleFunc("/debug/optrace", func(w http.ResponseWriter, r *http.Request) {
			f, err := optraceFilter(r.URL.Query())
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = otRec.WriteJSON(w, f) // nil-safe: empty document without -optrace
		})
		mux.HandleFunc("/debug/pprof/", hpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", hpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", hpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", hpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", hpprof.Trace)
		srv = &http.Server{Handler: mux}
		go srv.Serve(ln)
		metricsURL = fmt.Sprintf("http://%s/metrics", ln.Addr())
		fmt.Printf("serving live endpoints at http://%s (/metrics /debug/timeseries /debug/picks /debug/slo /debug/control /debug/optrace /debug/pprof)\n\n", ln.Addr())
	}

	if *pickbench {
		ab := experiments.RunAllocBench(cfg, os.Stdout)
		if ab.Striped.Wall[8] >= ab.Shared.Wall[8] {
			fmt.Fprintf(os.Stderr,
				"pickbench: striped pick path not faster at 8 workers (striped %v >= shared %v)\n",
				ab.Striped.Wall[8], ab.Shared.Wall[8])
			os.Exit(1)
		}
	} else if *faults != "" {
		if err := runFaults(cfg, *faults); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if *benchJSON != "" {
		name := strings.TrimSuffix(filepath.Base(*benchJSON), ".json")
		start := time.Now()
		art, err := experiments.CollectArtifact(cfg, name, gitRev(), os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := benchfmt.WriteFile(*benchJSON, art); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("artifact: %d metrics to %s (rev %s, scale %.2f, %v)\n",
			len(art.Metrics), *benchJSON, art.GitRev, art.Scale, time.Since(start).Round(time.Millisecond))
	} else if *pipeline {
		pb := experiments.RunPipelineBench(cfg, os.Stdout)
		if pb.OverlapGain < 1.3 {
			fmt.Fprintf(os.Stderr,
				"pipeline: overlap gain %.3fx below the 1.3x floor at 8 workers (serial %v, pipelined %v)\n",
				pb.OverlapGain, pb.SerialWall, pb.PipelinedWall)
			os.Exit(1)
		}
		if !pb.Identical() {
			fmt.Fprintf(os.Stderr,
				"pipeline: arms diverged (used %d vs %d, written %d vs %d) — pipelining must not change the final state\n",
				pb.UsedPipelined, pb.UsedClassic, pb.WrittenPipelined, pb.WrittenClassic)
			os.Exit(1)
		}
	} else if *exp == "all" {
		if err := experiments.RunAllContext(context.Background(), cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		e, err := experiments.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("### %s — %s (scale %.2f)\n\n", e.Name, e.Description, cfg.Scale)
		start := time.Now()
		e.Run(cfg, os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}

	if sloSet != nil {
		printSLOSummary(sloSet)
	}
	if ctlSet != nil {
		printControlSummary(ctlSet)
	}
	if otRec != nil {
		printOptraceSummary(otRec)
	}

	if srv != nil && *hold > 0 {
		fmt.Printf("holding live endpoints for %v (interrupt to stop early)\n", *hold)
		time.Sleep(*hold)
	}

	if err := finishObs(metricsURL, srv, tracer, otRec, *traceOut, *traceCollapse, csvRec, csvFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if err := checkSLOExpect(*sloExpect, sloSet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := checkControlExpect(*controlExpect, ctlSet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// printControlSummary renders the run's final control posture: portfolio-wide
// decision totals, then every actuation record (the decision provenance), so a
// scripted run surfaces what the controller did without anyone curling the
// live endpoint. All-idle portfolios print just the totals line.
func printControlSummary(set *control.Set) {
	tot := set.Totals()
	fmt.Printf("control: %d systems, %d instances, %d evaluations — %d actuations, %d suppressed (%d transitions; active: %d armed, %d acted)\n",
		tot.Systems, tot.Instances, tot.Evaluations, tot.Actuations, tot.Suppressed,
		tot.Transitions, tot.ActiveArmed, tot.ActiveActed)
	for _, sys := range set.Status() {
		for _, r := range sys.Records {
			verdict := "suppressed:" + r.Reason
			if r.Fired {
				verdict = fmt.Sprintf("%s %.0f -> %.0f", r.Knob, r.Old, r.New)
			}
			fmt.Printf("  %s/%s at cp %d: signal %s = %.3f — %s\n",
				sys.System, r.Instance, r.CP, r.Signal, r.Value, verdict)
		}
	}
}

// checkControlExpect turns the portfolio's final decision totals into an exit
// status: "none" is the clean-figure contract (the stock portfolio must not
// touch a healthy system), "actuations" the crash-smoke contract (the
// recovery clause must have fired somewhere).
func checkControlExpect(expect string, set *control.Set) error {
	if expect == "" {
		return nil
	}
	tot := set.Totals()
	switch expect {
	case "none":
		if tot.Actuations != 0 || tot.Suppressed != 0 {
			var sb strings.Builder
			_ = set.WriteJSON(&sb)
			return fmt.Errorf("control-expect none: %d actuations, %d suppressed decisions\n%s",
				tot.Actuations, tot.Suppressed, sb.String())
		}
	case "actuations":
		if tot.Actuations == 0 {
			return fmt.Errorf("control-expect actuations: nothing actuated (%d evaluations, %d suppressed)",
				tot.Evaluations, tot.Suppressed)
		}
	}
	return nil
}

// printSLOSummary renders the run's final SLO posture: portfolio-wide alert
// totals, then one line per instance that ever left (or is still out of) the
// ok state. All-green portfolios print just the totals line.
func printSLOSummary(set *slo.Set) {
	tot := set.Totals()
	fmt.Printf("slo: %d systems, %d instances, %d evaluations — %d warns, %d pages (%d transitions; active: %d warn, %d page)\n",
		tot.Systems, tot.Instances, tot.Evaluations, tot.Warns, tot.Pages,
		tot.Transitions, tot.ActiveWarns, tot.ActivePages)
	for _, sys := range set.Status() {
		for _, in := range sys.Instances {
			if in.State == "ok" {
				continue
			}
			fmt.Printf("  %s/%s [%s]: state=%s burn_fast=%.2f burn_slow=%.2f budget_used=%.3f\n",
				sys.System, in.Name, in.Kind, in.State,
				in.BurnFast, in.BurnSlow, in.BudgetUsed)
		}
		for _, tr := range sys.Transitions {
			fmt.Printf("  %s/%s: %s -> %s at cp %d\n",
				sys.System, tr.Instance, tr.From, tr.To, tr.CP)
		}
	}
}

// printOptraceSummary renders the run's sampling posture plus each volume's
// worst sampled op, so a scripted run surfaces its exemplar trace IDs
// without anyone curling the live endpoint.
func printOptraceSummary(rec *optrace.Recorder) {
	fmt.Printf("optrace: %d ops sampled (%d slow-gated, %d evicted) across %d volumes [%s]\n",
		rec.TotalSampled(), rec.TotalSlowSampled(), rec.TotalDropped(),
		len(rec.Spaces()), rec.Config())
	for _, sp := range rec.Spaces() {
		if id, lat, ok := rec.Exemplar(sp); ok {
			fmt.Printf("  %s: worst sampled op %s at %v\n",
				sp, optrace.FormatTraceID(id), time.Duration(lat))
		}
	}
}

// optraceFilter translates /debug/optrace query parameters into a trace
// filter: ?vol= substring-matches the volume space, ?min_lat= is a
// time.ParseDuration floor, ?id= fetches one trace by ID (hex or decimal),
// ?limit= keeps the newest N per space.
func optraceFilter(q url.Values) (optrace.Filter, error) {
	var f optrace.Filter
	f.Space = q.Get("vol")
	if v := q.Get("min_lat"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return f, fmt.Errorf("min_lat %q: want a non-negative duration", v)
		}
		f.MinLatNS = uint64(d)
	}
	if v := q.Get("id"); v != "" {
		id, err := optrace.ParseTraceID(v)
		if err != nil {
			return f, fmt.Errorf("id %q: %v", v, err)
		}
		f.ID = id
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("limit %q: want a non-negative integer", v)
		}
		f.Limit = n
	}
	return f, nil
}

// checkSLOExpect turns the portfolio's final alert totals into an exit
// status: "none" is the clean-figure contract (no warn or page may have
// fired anywhere), "alerts" the crash-smoke contract (at least one page).
func checkSLOExpect(expect string, set *slo.Set) error {
	if expect == "" {
		return nil
	}
	tot := set.Totals()
	switch expect {
	case "none":
		if tot.Pages != 0 || tot.Warns != 0 {
			var sb strings.Builder
			_ = set.WriteJSON(&sb)
			return fmt.Errorf("slo-expect none: %d pages, %d warns fired\n%s", tot.Pages, tot.Warns, sb.String())
		}
	case "alerts":
		if tot.Pages == 0 {
			return fmt.Errorf("slo-expect alerts: no SLO page fired (%d evaluations, %d warns)", tot.Evaluations, tot.Warns)
		}
	}
	return nil
}

// runFaults handles -faults: the full crash matrix, or one plan-spec
// scenario. Either way a silently-divergent cache is a hard failure.
func runFaults(cfg experiments.Config, mode string) error {
	if mode == "matrix" {
		res := experiments.RunCrashMatrix(cfg, os.Stdout)
		if div := res.Divergent(); len(div) > 0 {
			return fmt.Errorf("crash matrix: silent divergence in %d of %d cells", len(div), len(res.Cells))
		}
		return nil
	}
	if mode == "pipeline" {
		res := experiments.RunPipelineCrashMatrix(cfg, os.Stdout)
		if div := res.Divergent(); len(div) > 0 {
			return fmt.Errorf("pipelined crash matrix: silent divergence in %d of %d cells", len(div), len(res.Cells))
		}
		return nil
	}
	plan, err := faultinject.ParsePlan(mode)
	if err != nil {
		return err
	}
	if plan.Seed == 0 {
		plan.Seed = cfg.Seed
	}
	// Overlap phases only occur with pipelined CPs; route their plans to the
	// pipelined scenario (whose overlap window is boundary 4).
	scenario, name := experiments.RunFaultScenario, "faults"
	for _, p := range faultinject.OverlapPhases() {
		if plan.CrashPhase == p {
			scenario, name = experiments.RunPipelineFaultScenario, "faults.pipeline"
		}
	}
	cell := scenario(cfg, plan, name)
	fmt.Printf("fault scenario: phase=%q fault=%s crashed=%v\n", cell.Phase, cell.Fault, cell.Crashed)
	if cell.Damage != "" {
		fmt.Printf("  media damage: %s\n", cell.Damage)
	}
	fmt.Printf("  remount: %d spaces — %d clean, %d reconstructed, %d fallbacks (stale %d, torn %d, damaged %d, missing %d)\n",
		cell.Spaces, cell.CleanLoads, cell.Reconstructed, cell.Fallbacks,
		cell.Stale, cell.Torn, cell.Damaged, cell.Missing)
	if cell.Divergent > 0 {
		return fmt.Errorf("scrub: silent divergence in %d spaces (first: %s)", cell.Divergent, cell.FirstDivergence)
	}
	fmt.Println("  scrub: clean — every cache agrees with the bitmap metafiles")
	return nil
}

// finishObs drains the observability sinks after the experiments finish:
// it self-checks the metrics endpoint (so scripted runs need no external
// HTTP client), flushes the trace file with a phase-duration digest, and
// closes the CSV stream. Any failure is reported as a run failure.
func finishObs(metricsURL string, srv *http.Server, tracer *obs.Tracer, otRec *optrace.Recorder,
	traceOut, traceCollapse string, csvRec *obs.CSVRecorder, csvFile *os.File) error {
	if srv != nil {
		resp, err := http.Get(metricsURL)
		if err != nil {
			return fmt.Errorf("metrics self-check: %w", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("metrics self-check: %w", err)
		}
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			return fmt.Errorf("metrics self-check: status %d, %d bytes", resp.StatusCode, len(body))
		}
		fmt.Printf("metrics self-check ok: %d bytes from %s\n", len(body), metricsURL)
		srv.Close()
	}
	if tracer != nil && traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		evs := tracer.Events()
		durs := make([]float64, 0, len(evs))
		for _, ev := range evs {
			if ev.Dur > 0 {
				durs = append(durs, float64(ev.Dur))
			}
		}
		sum := stats.Summarize(durs)
		fmt.Printf("trace: %d events to %s (timed spans: %d, p50 %v, p95 %v)\n",
			len(evs), traceOut, sum.N(),
			time.Duration(sum.Percentile(50)).Round(time.Microsecond),
			time.Duration(sum.Percentile(95)).Round(time.Microsecond))
	}
	if (tracer != nil || otRec != nil) && traceCollapse != "" {
		f, err := os.Create(traceCollapse)
		if err != nil {
			return err
		}
		// The CP-phase spans and the sampled ops' critical paths fold into
		// one collapsed-stack file; the op stacks are rooted at op.read /
		// op.write so flamegraphs keep the two families apart.
		var evs []obs.Event
		if tracer != nil {
			evs = tracer.Events()
		}
		evs = append(evs, otRec.CollapsedEvents()...)
		stacks, err := obs.WriteCollapsed(f, evs)
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace-collapse: %d stacks to %s\n", stacks, traceCollapse)
	}
	if csvRec != nil {
		if err := csvRec.Flush(); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
		if err := csvFile.Close(); err != nil {
			return err
		}
		fmt.Printf("csv: %d rows\n", csvRec.Rows())
	}
	return nil
}
