// Command waflbench regenerates the paper's evaluation figures.
//
// Each experiment builds the configuration the paper describes, ages it
// with the stated workload, measures per-operation service demands in the
// simulator, and prints the same rows/series the figure reports.
//
// Usage:
//
//	waflbench [-exp fig6|fig7|fig8|fig9|fig10|all] [-scale 1.0] [-seed 42]
//	          [-parallel N] [-cpuprofile f] [-memprofile f]
//
// -parallel sets the deterministic work-pool width: experiment arms, MVA
// sweep points, CP flushes, and mount walks fan out across N workers, with
// bit-identical results at any N (0 selects min(GOMAXPROCS, 8)).
//
// Absolute numbers are simulation-scale; the comparisons (who wins, by what
// factor, where curves sit) are what reproduce the paper. See EXPERIMENTS.md
// for paper-versus-measured tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"waflfs/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig6..fig10 or all")
	scale := flag.Float64("scale", 1.0, "working-set scale factor (smaller = faster)")
	seed := flag.Int64("seed", 42, "random seed")
	cores := flag.Int("cores", 20, "storage-server CPU cores for the queueing model")
	list := flag.Bool("list", false, "list experiments and exit")
	workers := flag.Int("parallel", 1,
		"work-pool width for experiments, CP flushes, and mount walks (0 = min(GOMAXPROCS,8), 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC() // profile live allocations, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Cores = *cores
	cfg.Workers = *workers

	if *exp == "all" {
		if err := experiments.RunAllContext(context.Background(), cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	e, err := experiments.Lookup(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("### %s — %s (scale %.2f)\n\n", e.Name, e.Description, cfg.Scale)
	start := time.Now()
	e.Run(cfg, os.Stdout)
	fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
}
