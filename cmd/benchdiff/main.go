// Command benchdiff compares two benchmark artifacts (BENCH_<n>.json, see
// internal/benchfmt) and exits non-zero when any metric drifts beyond its
// tolerance band — the regression gate for the repo's perf trajectory.
//
// Usage:
//
//	benchdiff OLD.json NEW.json    compare NEW against the OLD baseline
//	benchdiff NEW.json             compare against the newest committed
//	                               BENCH_<n>.json in -dir (excluding NEW)
//	benchdiff -print-latest        print the newest BENCH_<n>.json in -dir
//	benchdiff -print-next          print the first unused BENCH_<n>.json name
//
// The -print-* modes let scripts (verify.sh, make bench) discover the
// baseline and the next artifact number without duplicating the numbering
// convention.
//
// Tolerances are relative bands carried per metric by the OLD artifact
// (default 0.25). Metrics present only in NEW are informational, and are
// summarized per family (first dotted name component) so freshly landed
// metric suites show up in the gate output by name. Exit status: 0 =
// within bands, 1 = drift or missing metrics, 2 = usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"waflfs/internal/benchfmt"
	"waflfs/internal/stats"
)

func main() {
	dir := flag.String("dir", ".", "directory searched for the newest BENCH_<n>.json baseline")
	verbose := flag.Bool("v", false, "print every metric, not just violations")
	printLatest := flag.Bool("print-latest", false, "print the newest BENCH_<n>.json path in -dir and exit")
	printNext := flag.Bool("print-next", false, "print the first unused BENCH_<n>.json path in -dir and exit")
	flag.Parse()
	if *printLatest || *printNext {
		var path string
		var err error
		if *printLatest {
			path, err = benchfmt.FindLatest(*dir, "")
		} else {
			path, err = benchfmt.NextPath(*dir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(path)
		return
	}
	os.Exit(run(os.Stdout, os.Stderr, *dir, *verbose, flag.Args()))
}

func run(out, errw io.Writer, dir string, verbose bool, args []string) int {
	var oldPath, newPath string
	switch len(args) {
	case 1:
		newPath = args[0]
		var err error
		oldPath, err = benchfmt.FindLatest(dir, newPath)
		if err != nil {
			fmt.Fprintln(errw, err)
			return 2
		}
	case 2:
		oldPath, newPath = args[0], args[1]
	default:
		fmt.Fprintln(errw, "usage: benchdiff [-dir D] [-v] [OLD.json] NEW.json")
		return 2
	}

	oldArt, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	newArt, err := benchfmt.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	if err := benchfmt.CheckComparable(oldArt, newArt); err != nil {
		fmt.Fprintf(errw, "benchdiff: artifacts not comparable: %v\n", err)
		return 2
	}

	res := benchfmt.Compare(oldArt, newArt)
	tb := stats.Table{
		Title: fmt.Sprintf("benchdiff %s (%s) -> %s (%s)",
			oldPath, oldArt.GitRev, newPath, newArt.GitRev),
		Columns: []string{"metric", "old", "new", "drift", "tol", "status"},
	}
	shown := 0
	for _, d := range res.Diffs {
		if !verbose && d.Status == benchfmt.StatusOK {
			continue
		}
		tb.AddRow(d.Name,
			fmt.Sprintf("%.6g", d.Old), fmt.Sprintf("%.6g", d.New),
			fmt.Sprintf("%.1f%%", 100*d.Rel), fmt.Sprintf("%.0f%%", 100*d.Tol),
			d.Status)
		shown++
	}
	if shown > 0 {
		fmt.Fprintln(out, tb.String())
	}
	// Metrics new since the baseline are informational, but a whole new
	// family (first dotted component) usually means a subsystem landed and
	// its gates are live for the first time — name them so the gate output
	// records the suite growing, not just holding.
	newByFamily := map[string]int{}
	for _, d := range res.Diffs {
		if d.Status == benchfmt.StatusNew {
			fam, _, _ := strings.Cut(d.Name, ".")
			newByFamily[fam]++
		}
	}
	if len(newByFamily) > 0 {
		fams := make([]string, 0, len(newByFamily))
		for fam := range newByFamily {
			fams = append(fams, fam)
		}
		sort.Strings(fams)
		parts := make([]string, len(fams))
		for i, fam := range fams {
			parts[i] = fmt.Sprintf("%s (%d)", fam, newByFamily[fam])
		}
		fmt.Fprintf(out, "new since baseline: %s\n", strings.Join(parts, ", "))
	}
	if res.Violations > 0 {
		fmt.Fprintf(out, "FAIL: %d of %d metrics drifted beyond tolerance\n",
			res.Violations, len(res.Diffs))
		return 1
	}
	fmt.Fprintf(out, "ok: %d metrics within tolerance\n", len(res.Diffs))
	return 0
}
