package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"waflfs/internal/benchfmt"
)

func writeArtifact(t *testing.T, path string, a benchfmt.Artifact) {
	t.Helper()
	if err := benchfmt.WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
}

func baseArtifact() benchfmt.Artifact {
	a := benchfmt.Artifact{Schema: benchfmt.SchemaVersion, Name: "BENCH_1",
		GitRev: "r1", Seed: 42, Scale: 0.35, Workers: 1}
	a.Add("fig6.wa_on", 1.2, "x", 0.15)
	a.Add("frag.arm.rg0.free_frac", 0.4, "", 0.1)
	a.Add("micro.write.cpu_per_op_ns", 900, "ns", 0)
	return a
}

// Self-comparison must be a clean pass with exit 0 — the CI gate's sanity
// check that the pipeline never flags zero drift.
func TestRunSelfCompareExitsZero(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "BENCH_1.json")
	writeArtifact(t, p, baseArtifact())

	var out strings.Builder
	if code := run(&out, io.Discard, dir, false, []string{p, p}); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok: 3 metrics within tolerance") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// A synthetic tolerance violation must exit 1 and name the drifted metric —
// the acceptance criterion for the regression gate.
func TestRunDriftExitsOne(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	writeArtifact(t, oldP, baseArtifact())
	drifted := baseArtifact()
	for i := range drifted.Metrics {
		if drifted.Metrics[i].Name == "fig6.wa_on" {
			drifted.Metrics[i].Value *= 1.5 // +50% vs 15% band
		}
	}
	writeArtifact(t, newP, drifted)

	var out strings.Builder
	if code := run(&out, io.Discard, dir, false, []string{oldP, newP}); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "fig6.wa_on") ||
		!strings.Contains(out.String(), benchfmt.StatusDrift) ||
		!strings.Contains(out.String(), "FAIL: 1 of 3") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// One-argument form finds the newest committed BENCH_<n>.json as baseline,
// never the candidate itself.
func TestRunFindsLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, filepath.Join(dir, "BENCH_1.json"), baseArtifact())
	newer := baseArtifact()
	newer.Name, newer.GitRev = "BENCH_2", "r2"
	writeArtifact(t, filepath.Join(dir, "BENCH_2.json"), newer)
	cand := baseArtifact()
	cand.Name, cand.GitRev = "BENCH_9", "r9"
	candP := filepath.Join(dir, "BENCH_9.json")
	writeArtifact(t, candP, cand)

	var out strings.Builder
	if code := run(&out, io.Discard, dir, true, []string{candP}); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "(r2) -> ") {
		t.Fatalf("baseline should be BENCH_2 (r2):\n%s", out.String())
	}
}

func TestRunErrorsExitTwo(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "BENCH_1.json")
	writeArtifact(t, p, baseArtifact())

	if code := run(io.Discard, io.Discard, dir, false, nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run(io.Discard, io.Discard, dir, false, []string{p, filepath.Join(dir, "missing.json")}); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(io.Discard, io.Discard, dir, false, []string{p, bad}); code != 2 {
		t.Errorf("corrupt file: exit %d, want 2", code)
	}
	other := baseArtifact()
	other.Scale = 1.0
	otherP := filepath.Join(dir, "full.json")
	writeArtifact(t, otherP, other)
	if code := run(io.Discard, io.Discard, dir, false, []string{p, otherP}); code != 2 {
		t.Errorf("incomparable scale: exit %d, want 2", code)
	}
	// A candidate alone in an empty dir has no baseline.
	if code := run(io.Discard, io.Discard, t.TempDir(), false, []string{p}); code != 2 {
		t.Errorf("no baseline: exit %d, want 2", code)
	}
}

// Metrics present only in the candidate are grouped per family in one
// summary line — the gate output's record of a freshly landed suite — and
// never count as violations.
func TestRunNewFamilySummary(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	writeArtifact(t, oldP, baseArtifact())
	grown := baseArtifact()
	grown.Add("control.actuations_clean", 0, "", 0.001)
	grown.Add("control.storm.wall_ratio", 0.99, "", 0.1)
	grown.Add("control.storm.actuations", 4, "", 0.25)
	grown.Add("micro.read.cpu_per_op_ns", 700, "ns", 0)
	writeArtifact(t, newP, grown)

	var out strings.Builder
	if code := run(&out, io.Discard, dir, false, []string{oldP, newP}); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "new since baseline: control (3), micro (1)") {
		t.Fatalf("missing family summary:\n%s", out.String())
	}
}

// -v prints passing metrics too.
func TestRunVerbose(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "BENCH_1.json")
	writeArtifact(t, p, baseArtifact())
	var out strings.Builder
	if code := run(&out, io.Discard, dir, true, []string{p, p}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "micro.write.cpu_per_op_ns") {
		t.Fatalf("verbose output missing passing metric:\n%s", out.String())
	}
}
