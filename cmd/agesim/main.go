// Command agesim ages a simulated WAFL file system in steps and reports how
// free-space fragmentation evolves — the phenomenon that motivates the
// paper (§2.2): longest free run, full-stripe-write fraction, write
// amplification (SSD), and the AA cache's pick quality at each step.
//
// Usage:
//
//	agesim [-media ssd] [-steps 6] [-churn-per-step 0.25] [-fill 0.55]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"waflfs/internal/aa"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

func main() {
	mediaName := flag.String("media", "ssd", "device media: hdd, ssd, or smr")
	steps := flag.Int("steps", 6, "aging steps")
	churnStep := flag.Float64("churn-per-step", 0.25, "random-overwrite churn per step (fraction of data)")
	fill := flag.Float64("fill", 0.55, "initial fill fraction")
	perDev := flag.Uint64("blocks", 1<<17, "blocks per device")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	var media aa.Media
	switch strings.ToLower(*mediaName) {
	case "hdd":
		media = aa.MediaHDD
	case "ssd":
		media = aa.MediaSSD
	case "smr":
		media = aa.MediaSMR
	default:
		fmt.Fprintf(os.Stderr, "unknown media %q\n", *mediaName)
		os.Exit(2)
	}

	spec := wafl.GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: *perDev, Media: media}
	aggBlocks := 2 * 6 * *perDev
	lunBlocks := uint64(float64(aggBlocks) * *fill)
	s := wafl.NewSystem([]wafl.GroupSpec{spec, spec},
		[]wafl.VolSpec{{Name: "vol0", Blocks: lunBlocks * 2}}, wafl.DefaultTunables(), *seed)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", lunBlocks)
	rng := rand.New(rand.NewSource(*seed))

	workload.SequentialFill(s, lun, 1)
	s.CP()

	tb := stats.Table{
		Title: fmt.Sprintf("aging on %s (fill %.0f%%, %.2fx churn per step)", media, 100**fill, *churnStep),
		Columns: []string{"step", "churn", "longest free run", "full-stripe frac",
			"picked free frac", "write amp"},
	}
	report := func(step int, churn float64) {
		g := s.Agg.Groups()[0]
		longest := s.Agg.Bitmap().LongestFreeRun(g.Geometry().DeviceRange(0))
		m := g.Metrics()
		tb.AddRow(step, fmt.Sprintf("%.2fx", churn),
			longest,
			fmt.Sprintf("%.3f", g.RAIDStats().FullStripeFraction()),
			fmt.Sprintf("%.3f", m.PickedScoreFraction),
			fmt.Sprintf("%.2f", s.WriteAmplification()))
	}
	report(0, 0)
	for step := 1; step <= *steps; step++ {
		s.ResetMetrics()
		ops := int(*churnStep * float64(lunBlocks))
		workload.RandomOverwrite(s, []*wafl.LUN{lun}, rng, ops, 1)
		s.CP()
		report(step, float64(step)**churnStep)
	}
	fmt.Println(tb.String())
}
