// Command agesim ages a simulated WAFL file system in steps and reports how
// free-space fragmentation evolves — the phenomenon that motivates the
// paper (§2.2). Each step's row comes from the fragscan analyzer
// (internal/obs/fragscan), which scans every space at CP boundaries:
// longest free run, mean free-extent length, fully-free-stripe fraction,
// the AA cache's pick quality, and write amplification (SSD).
//
// Usage:
//
//	agesim [-media ssd] [-steps 6] [-churn-per-step 0.25] [-fill 0.55]
//	       [-json] [-csv-out f.csv]
//
// -json dumps every recorded fragscan report to stdout as JSON instead of
// the table; -csv-out writes the tidy per-CP series (space, cp, series,
// key, value) to a file — both consistent with waflbench's sink flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"waflfs/internal/aa"
	"waflfs/internal/obs/fragscan"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

func main() {
	mediaName := flag.String("media", "ssd", "device media: hdd, ssd, or smr")
	steps := flag.Int("steps", 6, "aging steps")
	churnStep := flag.Float64("churn-per-step", 0.25, "random-overwrite churn per step (fraction of data)")
	fill := flag.Float64("fill", 0.55, "initial fill fraction")
	perDev := flag.Uint64("blocks", 1<<17, "blocks per device")
	seed := flag.Int64("seed", 7, "random seed")
	jsonOut := flag.Bool("json", false, "dump all fragscan reports as JSON to stdout")
	csvOut := flag.String("csv-out", "", "write tidy fragscan series rows to this CSV file")
	flag.Parse()

	var media aa.Media
	switch strings.ToLower(*mediaName) {
	case "hdd":
		media = aa.MediaHDD
	case "ssd":
		media = aa.MediaSSD
	case "smr":
		media = aa.MediaSMR
	default:
		fmt.Fprintf(os.Stderr, "unknown media %q\n", *mediaName)
		os.Exit(2)
	}

	rec := fragscan.NewRecorder()
	tun := wafl.DefaultTunables()
	tun.Obs = &wafl.ObsOptions{Name: "agesim", Frag: rec}

	spec := wafl.GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: *perDev, Media: media}
	aggBlocks := 2 * 6 * *perDev
	lunBlocks := uint64(float64(aggBlocks) * *fill)
	s := wafl.NewSystem([]wafl.GroupSpec{spec, spec},
		[]wafl.VolSpec{{Name: "vol0", Blocks: lunBlocks * 2}}, tun, *seed)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", lunBlocks)
	rng := rand.New(rand.NewSource(*seed))

	workload.SequentialFill(s, lun, 1)
	s.CP()

	tb := stats.Table{
		Title: fmt.Sprintf("aging on %s (fill %.0f%%, %.2fx churn per step)", media, 100**fill, *churnStep),
		Columns: []string{"step", "churn", "longest free run", "mean run",
			"free-stripe frac", "picked free frac", "write amp"},
	}
	// Picks are sparse per CP (a group re-picks only when its AA drains), so
	// the table aggregates pick quality over each step's whole CP window
	// instead of showing the final CP's — usually empty — window.
	var lastCP uint64
	report := func(step int, churn float64) {
		rep, ok := rec.Last("agesim.rg0")
		if !ok {
			return
		}
		var picks uint64
		var weighted float64
		for _, r := range rec.Reports() {
			if r.Space == "agesim.rg0" && r.CP > lastCP {
				picks += r.Picks
				weighted += r.PickedFreeFrac * float64(r.Picks)
			}
		}
		lastCP = rep.CP
		picked := 0.0
		if picks > 0 {
			picked = weighted / float64(picks)
		}
		tb.AddRow(step, fmt.Sprintf("%.2fx", churn),
			rep.LongestRun,
			fmt.Sprintf("%.1f", rep.MeanRun),
			fmt.Sprintf("%.3f", rep.FreeStripeFrac),
			fmt.Sprintf("%.3f", picked),
			fmt.Sprintf("%.2f", s.WriteAmplification()))
	}
	report(0, 0)
	for step := 1; step <= *steps; step++ {
		s.ResetMetrics()
		ops := int(*churnStep * float64(lunBlocks))
		workload.RandomOverwrite(s, []*wafl.LUN{lun}, rng, ops, 1)
		s.CP()
		report(step, float64(step)**churnStep)
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		out := struct {
			Media        string            `json:"media"`
			Fill         float64           `json:"fill"`
			ChurnPerStep float64           `json:"churn_per_step"`
			Steps        int               `json:"steps"`
			Seed         int64             `json:"seed"`
			Reports      []fragscan.Report `json:"reports"`
		}{media.String(), *fill, *churnStep, *steps, *seed, rec.Reports()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(tb.String())
}
