// Command fsinspect builds a simulated WAFL system, optionally ages it, and
// dumps the allocator-visible state: per-RAID-group AA score distributions,
// the heap cache's best AAs, each FlexVol's HBPS histogram, and bitmap
// fragmentation statistics.
//
// Usage:
//
//	fsinspect [-media hdd|ssd|smr] [-groups 2] [-fill 0.5] [-churn 0.5] [-json]
//
// With -json the text report is replaced by a machine-readable snapshot of
// the system's metric registry (every counter, gauge, and histogram the
// observability layer tracks), suitable for piping into jq.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"waflfs/internal/aa"
	"waflfs/internal/obs"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

func main() {
	mediaName := flag.String("media", "hdd", "device media: hdd, ssd, or smr")
	groups := flag.Int("groups", 2, "RAID groups")
	devices := flag.Int("devices", 6, "data devices per group")
	perDev := flag.Uint64("blocks", 1<<17, "blocks per device")
	fill := flag.Float64("fill", 0.5, "fraction of the aggregate to fill")
	churn := flag.Float64("churn", 0.5, "random-overwrite churn factor applied after fill")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.Bool("json", false, "emit the metric-registry snapshot as JSON instead of the text report")
	flag.Parse()

	var media aa.Media
	switch strings.ToLower(*mediaName) {
	case "hdd":
		media = aa.MediaHDD
	case "ssd":
		media = aa.MediaSSD
	case "smr":
		media = aa.MediaSMR
	default:
		fmt.Fprintf(os.Stderr, "unknown media %q\n", *mediaName)
		os.Exit(2)
	}

	spec := wafl.GroupSpec{
		DataDevices: *devices, ParityDevices: 1,
		BlocksPerDevice: *perDev, Media: media,
	}
	specs := make([]wafl.GroupSpec, *groups)
	for i := range specs {
		specs[i] = spec
	}
	aggBlocks := uint64(*groups) * uint64(*devices) * *perDev
	lunBlocks := uint64(float64(aggBlocks) * *fill)
	volBlocks := lunBlocks * 2
	if volBlocks == 0 {
		volBlocks = aa.RAIDAgnosticBlocks
	}

	s := wafl.NewSystem(specs, []wafl.VolSpec{{Name: "vol0", Blocks: volBlocks}}, wafl.DefaultTunables(), *seed)
	rng := rand.New(rand.NewSource(*seed))
	if lunBlocks > 0 {
		lun := s.Agg.Vols()[0].CreateLUN("lun0", lunBlocks)
		workload.Age(s, []*wafl.LUN{lun}, rng, *churn)
	}

	if *jsonOut {
		if err := obs.WriteJSON(os.Stdout, "fsinspect", s.Registry().Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("aggregate: %d blocks (%d groups x %d devices x %d), %.1f%% used\n",
		s.Agg.Blocks(), *groups, *devices, *perDev, 100*s.Agg.UsedFraction())

	for _, g := range s.Agg.Groups() {
		topo := g.Topology()
		fmt.Printf("\nRAID group %d: media=%s stripes/AA=%d AAs=%d\n",
			g.Index, g.Spec.Media, topo.StripesPerAA(), topo.NumAAs())

		// Score histogram over 10 buckets of fullness.
		var buckets [10]int
		maxScore := topo.BlocksPerAA()
		for id := 0; id < topo.NumAAs(); id++ {
			sc := aa.Score(topo, s.Agg.Bitmap(), aa.ID(id))
			b := int(10 * sc / (maxScore + 1))
			buckets[b]++
		}
		fmt.Println("  AA free-fraction histogram (0-10% .. 90-100% free):")
		fmt.Print("  ")
		for _, n := range buckets {
			fmt.Printf("%6d", n)
		}
		fmt.Println()

		top := g.Cache().TopK(5)
		fmt.Println("  best AAs (heap cache):")
		for _, e := range top {
			fmt.Printf("    AA %-6d score %-6d (%.1f%% free)\n",
				e.ID, e.Score, 100*float64(e.Score)/float64(maxScore))
		}
	}

	for _, v := range s.Agg.Vols() {
		// Round-trip the volume's HBPS through its TopAA metafile — the
		// same bytes a mount would read — so the tool inspects exactly
		// what is persisted.
		h, _, err := s.Agg.Store().LoadAgnostic(v.Name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: TopAA metafile for %s unreadable: %v\n", v.Name, err)
			continue
		}
		fmt.Printf("\nFlexVol %q: %d blocks, %.1f%% used; HBPS: %d AAs tracked, %d listed\n",
			v.Name, v.Blocks(), 100*v.UsedFraction(), h.Total(), h.ListLen())
		fmt.Println("  histogram bins (best to worst score range):")
		fmt.Print("  ")
		for b := 0; b < h.NumBins(); b++ {
			if b > 0 && b%16 == 0 {
				fmt.Print("\n  ")
			}
			fmt.Printf("%5d", h.BinCount(b))
		}
		fmt.Println()
	}

	reads, writes := s.Agg.Store().Stats()
	fmt.Printf("\nTopAA metafile store: %d block reads, %d block writes\n", reads, writes)
}
