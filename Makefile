# Developer entry points. Everything here is plain `go` plus the repo's own
# tools; there are no external dependencies.

SCALE ?= 1.0
# BENCH defaults to the next unused artifact number (BENCH_<max+1>.json) so
# `make bench-artifact` never clobbers a committed baseline by accident.
BENCH ?= $(shell go run ./cmd/benchdiff -print-next)

.PHONY: all build test verify bench benchpick bench-artifact bench-diff live slo trace pipeline control

all: build

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate: formatting, build, vet, tests, race detector, obs smoke,
# bench-artifact smoke + benchdiff against the committed baseline.
verify:
	./verify.sh

# Full go-bench figure suite (see bench_test.go).
bench:
	WAFL_BENCH_SCALE=$(SCALE) go test -bench . -benchtime 1x -run '^$$'

# Allocator pick-path microbenchmark: striped vs shared, modeled contention.
# Exits nonzero if the striped arm is not faster at 8 workers.
benchpick:
	go run ./cmd/waflbench -pickbench -scale $(SCALE)

# Regenerate the benchmark artifact at full scale into the next unused
# BENCH_<n>.json and gate it against the newest previously committed one.
# -pipeline keeps the cp.pipeline.* / crash.pipeline.* families in every
# artifact from BENCH_9 on, and -control the control.* families from
# BENCH_10 on: dropping either would read as missing metrics against the
# committed baseline.
bench-artifact:
	go run ./cmd/waflbench -bench-json $(BENCH) -pipeline -control default -scale $(SCALE)
	go run ./cmd/benchdiff -dir . $(BENCH)

# Compare a fresh full-scale artifact against the committed baseline without
# overwriting it.
bench-diff:
	go run ./cmd/waflbench -bench-json /tmp/BENCH_new.json -pipeline -control default -scale $(SCALE)
	go run ./cmd/benchdiff -dir . /tmp/BENCH_new.json

# Pipelined-CP gate both ways: the overlap benchmark must clear its 1.3x
# floor with byte-identical final states (and fire no SLO alert), and a
# crash in the overlap window must page the recovery SLI while recovering
# without silent divergence.
pipeline:
	go run ./cmd/waflbench -pipeline -scale $(SCALE) -slo default -slo-expect none
	go run ./cmd/waflbench -faults pipeline -scale 0.1 -slo default -slo-expect alerts

# Run a quarter-scale fig9 with the live introspection endpoints up and hold
# them for half an hour — point cmd/wafltop (or a browser) at the address.
# The SLO engine is armed, so /debug/slo serves the live portfolio and the
# wafltop SLO panel populates.
live:
	go run ./cmd/waflbench -exp fig9 -scale 0.25 \
	    -metrics-addr 127.0.0.1:9190 -slo default -hold 30m

# Like `live`, but with request-scoped op tracing armed at a dense sampling
# rate: /debug/optrace serves the span trees (filter with ?vol= ?min_lat=
# ?id= ?limit=), wafltop shows the slowest-ops panel, and the run's critical
# paths fold into trace.folded for flamegraph.pl.
trace:
	go run ./cmd/waflbench -exp fig9 -scale 0.25 \
	    -metrics-addr 127.0.0.1:9190 -slo default -optrace rate=8 \
	    -trace-collapse trace.folded -hold 30m

# SLO gate both ways: a clean figure run must fire no alert, and the crash
# matrix (always at small scale — it sweeps every phase × fault) must page
# the recovery SLI.
slo:
	go run ./cmd/waflbench -exp fig9 -scale $(SCALE) -slo default -slo-expect none
	go run ./cmd/waflbench -faults matrix -scale 0.1 -slo default -slo-expect alerts

# Closed-loop controller gate both ways: on a clean figure run the stock
# portfolio must keep its hands off every knob (do no harm), and across the
# crash matrix the recovery page must kick at least one scrub (do some good).
control:
	go run ./cmd/waflbench -exp fig9 -scale $(SCALE) -control default -control-expect none
	go run ./cmd/waflbench -faults matrix -scale 0.1 -control default -control-expect actuations
