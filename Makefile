# Developer entry points. Everything here is plain `go` plus the repo's own
# tools; there are no external dependencies.

SCALE ?= 1.0
BENCH ?= BENCH_4.json

.PHONY: all build test verify bench bench-artifact bench-diff

all: build

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate: formatting, build, vet, tests, race detector, obs smoke,
# bench-artifact smoke + benchdiff self-comparison.
verify:
	./verify.sh

# Full go-bench figure suite (see bench_test.go).
bench:
	WAFL_BENCH_SCALE=$(SCALE) go test -bench . -benchtime 1x -run '^$$'

# Regenerate the committed benchmark artifact at full scale and gate it
# against the newest previously committed BENCH_<n>.json.
bench-artifact:
	go run ./cmd/waflbench -bench-json $(BENCH) -scale $(SCALE)
	go run ./cmd/benchdiff $(BENCH) $(BENCH)

# Compare a fresh full-scale artifact against the committed baseline without
# overwriting it.
bench-diff:
	go run ./cmd/waflbench -bench-json /tmp/BENCH_new.json -scale $(SCALE)
	go run ./cmd/benchdiff -dir . /tmp/BENCH_new.json
