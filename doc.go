// Package waflfs is a faithful, self-contained reproduction of the system
// described in "Efficient Search for Free Blocks in the WAFL File System"
// (Kesavan, Curtis-Maury, Bhattacharjee — ICPP 2018).
//
// The library implements the paper's primary contribution — allocation
// areas (AAs), the RAID-aware max-heap AA cache, the novel histogram-based
// partial sort (HBPS) used as the RAID-agnostic AA cache, media-aware AA
// sizing for HDD/SSD/SMR, and the persistent TopAA metafile — together with
// every substrate the evaluation depends on: bitmap metafiles, RAID
// geometry with tetris/stripe accounting, HDD/SSD/SMR device models
// (including page-mapped and hybrid FTL simulations with write-amplification
// accounting and AZCS checksum layout), a consistency-point engine, a
// copy-on-write dual-VBN write allocator over an aggregate hosting FlexVol
// volumes, segment cleaning, workload generators, and a closed-loop MVA
// queueing model that converts measured service demands into the
// latency-versus-throughput curves the paper plots.
//
// This root package re-exports the library's primary API; the
// implementation lives in the internal packages, one per subsystem. The
// examples directory contains runnable programs, and cmd/waflbench
// regenerates every evaluation figure of the paper.
//
// # Quick start
//
//	specs := []waflfs.GroupSpec{{
//		DataDevices: 6, ParityDevices: 1,
//		BlocksPerDevice: 1 << 18, Media: waflfs.MediaSSD,
//	}}
//	vols := []waflfs.VolSpec{{Name: "vol0", Blocks: 1 << 20}}
//	sys := waflfs.NewSystem(specs, vols, waflfs.DefaultTunables(), 42)
//	lun := sys.Agg.Vols()[0].CreateLUN("lun0", 100000)
//	sys.Write(lun, 0, 8)   // buffer a client write
//	sys.CP()               // commit a consistency point
package waflfs
