package waflfs

import (
	"io"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"waflfs/internal/experiments"
)

// benchScale controls how large the figure benchmarks run; override with
// WAFL_BENCH_SCALE=1.0 for full-scale reproduction (slower). The default
// keeps the complete bench suite in CI time while preserving every
// comparison's direction and approximate magnitude.
func benchScale() float64 {
	if s := os.Getenv("WAFL_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.35
}

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = benchScale()
	return cfg
}

// BenchmarkFig6 regenerates Figure 6 (§4.1): AA-cache latency/throughput
// curves, pick quality, SSD write amplification, and CPU/op. Reported
// metrics: peak throughput gain from each cache and the WA pair.
func BenchmarkFig6(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig6(cfg, io.Discard)
		b.ReportMetric(res.AggThroughputGainPct, "aggCacheGain%")
		b.ReportMetric(res.VolThroughputGainPct, "volCacheGain%")
		b.ReportMetric(res.WAOn, "WA-cacheOn")
		b.ReportMetric(res.WAOff, "WA-cacheOff")
		b.ReportMetric(100*res.AggPickedOn, "pickedFree%-on")
		b.ReportMetric(100*res.AggPickedOff, "pickedFree%-off")
	}
}

// BenchmarkFig7 regenerates Figure 7 (§4.2): per-disk and per-RAID-group
// write rates under OLTP with imbalanced aging.
func BenchmarkFig7(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig7(cfg, io.Discard)
		b.ReportMetric(res.FreshToAgedBlockRatio, "fresh/aged-blocks")
		b.ReportMetric(res.BlocksPerTetris[0], "aged-blocks/tetris")
		b.ReportMetric(res.BlocksPerTetris[2], "fresh-blocks/tetris")
	}
}

// BenchmarkFig8 regenerates Figure 8 (§4.3): SSD AA sizing.
func BenchmarkFig8(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig8(cfg, io.Discard)
		b.ReportMetric(res.ThroughputGainPct, "largeAAGain%")
		b.ReportMetric(res.WASmall, "WA-hddAA")
		b.ReportMetric(res.WALarge, "WA-largeAA")
	}
}

// BenchmarkFig9 regenerates Figure 9 (§4.3): SMR AA sizing with AZCS.
func BenchmarkFig9(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig9(cfg, io.Discard)
		b.ReportMetric(res.ThroughputGainPct, "alignedGain%")
		b.ReportMetric(float64(res.RandomChecksumSmall), "randCS-hddAA")
		b.ReportMetric(float64(res.RandomChecksumLarge), "randCS-smrAA")
	}
}

// BenchmarkFig10 regenerates Figure 10 (§4.4): first-CP time after mount
// with and without TopAA metafiles.
func BenchmarkFig10(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig10(cfg, io.Discard)
		if len(res.SizeSweep) == 0 {
			b.Skip("no size-sweep points at this WAFL_BENCH_SCALE")
		}
		last := res.SizeSweep[len(res.SizeSweep)-1]
		if last.WithTopAA == 0 {
			b.Skip("degenerate mount point at this WAFL_BENCH_SCALE")
		}
		b.ReportMetric(float64(last.WithoutTopAA)/float64(last.WithTopAA), "walk/topaa-time")
		b.ReportMetric(float64(last.TopAAReads), "topaaBlockReads")
		b.ReportMetric(float64(last.BitmapPages), "bitmapPagesWalked")
	}
}

// BenchmarkWritePath measures the end-to-end simulated write path: client
// write -> CP -> dual allocation -> tetris flush, on an aged system.
func BenchmarkWritePath(b *testing.B) {
	spec := GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: 1 << 17, Media: MediaHDD}
	sys := NewSystem([]GroupSpec{spec, spec},
		[]VolSpec{{Name: "v", Blocks: 1 << 21}}, DefaultTunables(), 1)
	lun := sys.Agg.Vols()[0].CreateLUN("l", 1<<20)
	rng := rand.New(rand.NewSource(1))
	Age(sys, []*LUN{lun}, rng, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Write(lun, uint64(rng.Intn(1<<20)), 1)
	}
	b.StopTimer()
	sys.CP()
}

// BenchmarkCacheOverhead quantifies the §4.1.2 claim that AA-cache
// maintenance is a vanishing share of the code path: it reports the modeled
// cache CPU as a fraction of total CPU over a measurement window.
func BenchmarkCacheOverhead(b *testing.B) {
	spec := GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: 1 << 16, Media: MediaHDD}
	sys := NewSystem([]GroupSpec{spec},
		[]VolSpec{{Name: "v", Blocks: 1 << 20}}, DefaultTunables(), 2)
	lun := sys.Agg.Vols()[0].CreateLUN("l", 300_000)
	rng := rand.New(rand.NewSource(2))
	Age(sys, []*LUN{lun}, rng, 0.2)
	before := sys.Counters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Write(lun, uint64(rng.Intn(300_000)), 1)
	}
	b.StopTimer()
	sys.CP()
	d := sys.Counters().Sub(before)
	if d.CPUTime > 0 {
		b.ReportMetric(100*float64(d.CacheCPUTime)/float64(d.CPUTime), "cacheCPU%")
	}
}

// BenchmarkMountSeeded measures the TopAA seeded-mount path end to end.
func BenchmarkMountSeeded(b *testing.B) {
	spec := GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: 1 << 17, Media: MediaHDD}
	sys := NewSystem([]GroupSpec{spec, spec},
		[]VolSpec{{Name: "v", Blocks: 1 << 21}}, DefaultTunables(), 3)
	lun := sys.Agg.Vols()[0].CreateLUN("l", 1<<19)
	rng := rand.New(rand.NewSource(3))
	Age(sys, []*LUN{lun}, rng, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Agg.Remount(true)
	}
}

// BenchmarkMountWalk measures the fallback full-bitmap-walk mount.
func BenchmarkMountWalk(b *testing.B) {
	spec := GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: 1 << 17, Media: MediaHDD}
	sys := NewSystem([]GroupSpec{spec, spec},
		[]VolSpec{{Name: "v", Blocks: 1 << 21}}, DefaultTunables(), 4)
	lun := sys.Agg.Vols()[0].CreateLUN("l", 1<<19)
	rng := rand.New(rand.NewSource(4))
	Age(sys, []*LUN{lun}, rng, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Agg.Remount(false)
	}
}
