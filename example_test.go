package waflfs_test

import (
	"fmt"

	"waflfs"
)

// Example walks the core write path: build an aggregate, write through a
// consistency point, and observe the copy-on-write allocation.
func Example() {
	specs := []waflfs.GroupSpec{{
		DataDevices: 4, ParityDevices: 1,
		BlocksPerDevice: 1 << 15, Media: waflfs.MediaHDD,
	}}
	vols := []waflfs.VolSpec{{Name: "vol0", Blocks: 4 * waflfs.RAIDAgnosticAABlocks}}
	sys := waflfs.NewSystem(specs, vols, waflfs.DefaultTunables(), 42)

	lun := sys.Agg.Vols()[0].CreateLUN("lun0", 10_000)
	sys.Write(lun, 7, 1)
	sys.CP()
	first := lun.Phys(7)

	sys.Write(lun, 7, 1) // overwrite: COW allocates a fresh block
	sys.CP()

	fmt.Println("block moved:", first != lun.Phys(7))
	fmt.Println("blocks freed:", sys.Counters().BlocksFreed)
	// Output:
	// block moved: true
	// blocks freed: 1
}
